package effects

import (
	"testing"

	"d2x/internal/minic"
)

// analyze checks src and runs the analysis; natives may add extra
// registrations on top of the core builtins.
func analyze(t *testing.T, src string, natives func(*minic.Natives)) *Analysis {
	t.Helper()
	nats := minic.NewNatives()
	if natives != nil {
		natives(nats)
	}
	file, err := minic.Parse("fx_test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := minic.Check(file, nats)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return Analyze(prog)
}

func summary(t *testing.T, a *Analysis, name string) *Summary {
	t.Helper()
	s, ok := a.ByName(name)
	if !ok {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

// TestAnalyzeTable drives the analysis through the lattice corners the
// verifier depends on.
func TestAnalyzeTable(t *testing.T) {
	tests := []struct {
		name     string
		src      string
		fn       string
		effects  Effect
		loop     LoopClass
		safe     bool
		natives  func(*minic.Natives)
		wantLine int // expected WriteLine; 0 = don't check
	}{
		{
			name: "pure handler",
			src: `func string h(string key) {
	string s = "v=" + key;
	return s;
}`,
			fn: "h", effects: 0, loop: LoopTrivial, safe: true,
		},
		{
			name: "global read only",
			src: `global int g = 7;
func int h(string key) { return g; }`,
			fn: "h", effects: ReadsHeap, loop: LoopTrivial, safe: true,
		},
		{
			name: "direct global write",
			src: `global int g = 0;
func int h(string key) {
	g = g + 1;
	return g;
}`,
			fn: "h", effects: ReadsHeap | WritesHeap, loop: LoopTrivial, safe: false,
			wantLine: 3,
		},
		{
			name: "transitive write through callee",
			src: `global int g = 0;
func void bump() { g = g + 1; }
func int h(string key) {
	bump();
	return 1;
}`,
			fn: "h", effects: ReadsHeap | WritesHeap, loop: LoopTrivial, safe: false,
			wantLine: 4, // the call site, not bump's body
		},
		{
			name: "mutual recursion reaches fixpoint",
			src: `func int even(int n) {
	if (n == 0) { return 1; }
	return odd(n - 1);
}
func int odd(int n) {
	if (n == 0) { return 0; }
	return even(n - 1);
}`,
			fn: "even", effects: DivergesMaybe, loop: LoopFuelBounded, safe: false,
		},
		{
			name: "unbounded while flagged unprovable",
			src: `func int h(string key) {
	while (true) { }
	return 0;
}`,
			fn: "h", effects: 0, loop: LoopUnprovable, safe: false,
		},
		{
			name: "while true with reachable break is fuel-bounded",
			src: `func int h(int n) {
	int i = 0;
	while (true) {
		i = i + 1;
		if (i > n) { break; }
	}
	return i;
}`,
			fn: "h", effects: 0, loop: LoopFuelBounded, safe: false,
		},
		{
			name: "while true with unreachable break is unprovable",
			src: `func int h(int n) {
	while (true) {
		if (n > 0) { continue; }
		continue;
		break;
	}
	return 0;
}`,
			fn: "h", effects: 0, loop: LoopUnprovable, safe: false,
		},
		{
			name: "counted for loop is trivial",
			src: `func int h(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { acc = acc + i; }
	return acc;
}`,
			fn: "h", effects: 0, loop: LoopTrivial, safe: true,
		},
		{
			name: "for over struct-field bound in quiet body is trivial",
			src: `struct box { int size; int[] data; }
func int h(box* b) {
	int acc = 0;
	for (int i = 0; i < b->size; i++) { acc = acc + b->data[i]; }
	return acc;
}`,
			fn: "h", effects: ReadsHeap, loop: LoopTrivial, safe: true,
		},
		{
			name: "for over field bound with heap write in body is not trivial",
			src: `struct box { int size; int[] data; }
func int h(box* b) {
	for (int i = 0; i < b->size; i++) { b->data[i] = 0; }
	return 0;
}`,
			fn: "h", effects: ReadsHeap | WritesHeap, loop: LoopFuelBounded, safe: false,
		},
		{
			name: "for mutating its own bound is not trivial",
			src: `func int h(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) { n = n + 1; acc = acc + 1; }
	return acc;
}`,
			fn: "h", effects: 0, loop: LoopFuelBounded, safe: false,
		},
		{
			name: "locally allocated stores stay pure",
			src: `func int h(int n) {
	int[] buf = new int[8];
	for (int i = 0; i < 8; i++) { buf[i] = i * n; }
	return buf[3];
}`,
			fn: "h", effects: 0, loop: LoopTrivial, safe: true,
		},
		{
			name: "store through pointer parameter writes heap",
			src:  `func void h(int* p) { *p = 9; }`,
			fn:   "h", effects: WritesHeap, loop: LoopTrivial, safe: false,
		},
		{
			name: "writing native attributed through WritesMemory flag",
			src: `global int g = 0;
func void h() { atomic_add(&g, 1); }`,
			fn: "h", effects: ReadsHeap | WritesHeap, loop: LoopTrivial, safe: false,
		},
		{
			name: "unknown native defaults to reads+extern, not writes",
			src:  `func int h() { return mystery(); }`,
			fn:   "h", effects: ReadsHeap | CallsExtern, loop: LoopTrivial, safe: true,
			natives: func(n *minic.Natives) {
				n.Register(&minic.Native{
					Name: "mystery",
					Sig:  minic.Signature{Result: minic.IntType},
					Handler: func(call *minic.NativeCall) (minic.Value, error) {
						return minic.IntVal(42), nil
					},
				})
			},
		},
		{
			name: "printf is extern only",
			src:  `func void h() { printf("hi\n"); }`,
			fn:   "h", effects: CallsExtern, loop: LoopTrivial, safe: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := analyze(t, tt.src, tt.natives)
			s := summary(t, a, tt.fn)
			if s.Effects != tt.effects {
				t.Errorf("effects = %s, want %s", s.Effects, tt.effects)
			}
			if s.Loop != tt.loop {
				t.Errorf("loop = %s, want %s", s.Loop, tt.loop)
			}
			if s.Safe() != tt.safe {
				t.Errorf("Safe() = %v, want %v", s.Safe(), tt.safe)
			}
			if tt.wantLine != 0 && s.WriteLine != tt.wantLine {
				t.Errorf("WriteLine = %d, want %d", s.WriteLine, tt.wantLine)
			}
		})
	}
}

// TestFixpointDeepChain checks that effects propagate through a call
// chain of several hops (the fixpoint actually iterates).
func TestFixpointDeepChain(t *testing.T) {
	a := analyze(t, `global int g = 0;
func void d() { g = 1; }
func void c() { d(); }
func void b() { c(); }
func void top() { b(); }`, nil)
	s := summary(t, a, "top")
	if s.Effects&WritesHeap == 0 {
		t.Fatalf("top effects = %s, want writes-heap via 3-hop chain", s.Effects)
	}
	if s.WriteLine != 5 {
		t.Errorf("WriteLine = %d, want 5 (the b() call site)", s.WriteLine)
	}
}

// TestSelfRecursionDiverges checks direct recursion is flagged.
func TestSelfRecursionDiverges(t *testing.T) {
	a := analyze(t, `func int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}`, nil)
	s := summary(t, a, "fact")
	if s.Effects&DivergesMaybe == 0 {
		t.Fatalf("fact effects = %s, want diverges-maybe", s.Effects)
	}
	if s.Safe() {
		t.Error("recursive function must not be Safe")
	}
}

// TestEffectString pins the diagnostic rendering.
func TestEffectString(t *testing.T) {
	if got := Effect(0).String(); got != "pure" {
		t.Errorf("Effect(0) = %q", got)
	}
	if got := (ReadsHeap | WritesHeap).String(); got != "reads-heap|writes-heap" {
		t.Errorf("mask = %q", got)
	}
	if got := LoopUnprovable.String(); got != "unprovable" {
		t.Errorf("LoopUnprovable = %q", got)
	}
}
