package effects

// Loop-bound heuristic. Three verdicts per loop:
//
//   - LoopTrivial: a counted for-loop `for (i = ...; i REL bound; i++/--)`
//     whose induction variable is local and untouched by the body, and
//     whose bound is loop-invariant (a literal, an unmodified local, or a
//     field/index read off an unmodified local in a body free of heap
//     writes and program calls — the pattern of every generated rtv
//     handler that iterates a runtime data structure).
//   - LoopFuelBounded: anything data-dependent but with a structural
//     exit: a non-constant while condition, a non-trivial for, or a
//     while(true) with a CFG-reachable break.
//   - LoopUnprovable: while(true) / for(;;) whose every break (if any)
//     sits in CFG-unreachable code — the loop cannot exit.
//
// The function-level verdict is the worst loop's class, with its line.

import "d2x/internal/minic"

// classifyLoops walks every loop of fd and returns the worst class found
// plus the source line of the offending loop.
func classifyLoops(p *minic.Program, fd *minic.FuncDecl, cfg *CFG) (LoopClass, int) {
	worst, line := LoopTrivial, 0
	upd := func(c LoopClass, l int) {
		if c > worst {
			worst, line = c, l
		}
	}

	// The walk tracks, for each loop, the break statements that belong
	// to it (not to a nested loop).
	var walkStmt func(s minic.Stmt, breaks *[]minic.Stmt)
	walkBlock := func(b *minic.BlockStmt, breaks *[]minic.Stmt) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			walkStmt(s, breaks)
		}
	}
	walkStmt = func(s minic.Stmt, breaks *[]minic.Stmt) {
		switch st := s.(type) {
		case *minic.BlockStmt:
			walkBlock(st, breaks)
		case *minic.IfStmt:
			walkBlock(st.Then, breaks)
			if st.Else != nil {
				walkStmt(st.Else, breaks)
			}
		case *minic.WhileStmt:
			var mine []minic.Stmt
			walkBlock(st.Body, &mine)
			upd(classifyWhile(st, mine, cfg), st.Pos())
		case *minic.ForStmt:
			var mine []minic.Stmt
			walkBlock(st.Body, &mine)
			upd(classifyFor(p, st, mine, cfg), st.Pos())
		case *minic.ParallelForStmt:
			// Iteration space computed before the loop starts: bounded.
			var mine []minic.Stmt
			walkBlock(st.Body, &mine)
		case *minic.BreakStmt:
			if breaks != nil {
				*breaks = append(*breaks, st)
			}
		}
	}
	walkBlock(fd.Body, nil)
	return worst, line
}

// classifyWhile handles `while (cond) body`.
func classifyWhile(st *minic.WhileStmt, breaks []minic.Stmt, cfg *CFG) LoopClass {
	if bl, ok := st.Cond.(*minic.BoolLit); ok {
		if !bl.Value {
			return LoopTrivial // while(false): body never runs
		}
		return infiniteHeaderClass(breaks, cfg)
	}
	// Data-dependent condition: finite in practice, unprovable here.
	return LoopFuelBounded
}

// classifyFor handles the C-style for statement.
func classifyFor(p *minic.Program, st *minic.ForStmt, breaks []minic.Stmt, cfg *CFG) LoopClass {
	if st.Cond == nil || condAlwaysTrue(st.Cond) {
		return infiniteHeaderClass(breaks, cfg)
	}
	if trivialForBound(p, st) {
		return LoopTrivial
	}
	return LoopFuelBounded
}

// infiniteHeaderClass classifies a loop whose header never exits: fuel
// can bound it if some break of this loop is reachable; otherwise the
// loop provably never terminates.
func infiniteHeaderClass(breaks []minic.Stmt, cfg *CFG) LoopClass {
	for _, br := range breaks {
		if cfg.StmtReachable(br) {
			return LoopFuelBounded
		}
	}
	return LoopUnprovable
}

// trivialForBound recognises the counted-loop pattern.
func trivialForBound(p *minic.Program, st *minic.ForStmt) bool {
	// Induction variable from the init clause.
	var ivSlot int
	var ivName string
	switch init := st.Init.(type) {
	case *minic.VarDeclStmt:
		ivSlot, ivName = init.Slot, init.Name
	case *minic.AssignStmt:
		id, ok := init.LHS.(*minic.Ident)
		if !ok || id.IsGlobal || id.IsFunc || init.Op != minic.Assign {
			return false
		}
		ivSlot, ivName = id.Slot, id.Name
	default:
		return false
	}

	// Condition `iv REL bound` (or `bound REL iv`), giving direction.
	cond, ok := st.Cond.(*minic.BinaryExpr)
	if !ok {
		return false
	}
	var bound minic.Expr
	var wantIncreasing bool
	switch {
	case isIdentSlot(cond.X, ivSlot) && (cond.Op == minic.Lt || cond.Op == minic.Le):
		bound, wantIncreasing = cond.Y, true
	case isIdentSlot(cond.X, ivSlot) && (cond.Op == minic.Gt || cond.Op == minic.Ge):
		bound, wantIncreasing = cond.Y, false
	case isIdentSlot(cond.Y, ivSlot) && (cond.Op == minic.Gt || cond.Op == minic.Ge):
		bound, wantIncreasing = cond.X, true
	case isIdentSlot(cond.Y, ivSlot) && (cond.Op == minic.Lt || cond.Op == minic.Le):
		bound, wantIncreasing = cond.X, false
	default:
		return false
	}

	// Post clause must step iv strictly toward the bound.
	if !stepsToward(st.Post, ivSlot, wantIncreasing) {
		return false
	}

	// The body must not touch iv (writes or address-of).
	mut := mutatedSlots(st.Body)
	if mut[ivSlot] {
		return false
	}
	_ = ivName

	// The bound must be invariant across iterations.
	switch b := bound.(type) {
	case *minic.IntLit:
		return true
	case *minic.Ident:
		return !b.IsGlobal && !b.IsFunc && !mut[b.Slot]
	case *minic.FieldExpr, *minic.IndexExpr:
		// A bound read from memory (`set->vertices_range`, `dims[0]`) is
		// invariant only if the root local is unmodified AND the body
		// performs no heap writes and no calls that could mutate the
		// underlying object.
		root := rootIdent(bound)
		if root == nil || root.IsGlobal || root.IsFunc || mut[root.Slot] {
			return false
		}
		return heapQuietBody(p, st.Body)
	}
	return false
}

func isIdentSlot(e minic.Expr, slot int) bool {
	id, ok := e.(*minic.Ident)
	return ok && !id.IsGlobal && !id.IsFunc && id.Slot == slot
}

// rootIdent unwraps field/index chains to the base identifier, or nil.
func rootIdent(e minic.Expr) *minic.Ident {
	for {
		switch x := e.(type) {
		case *minic.IndexExpr:
			e = x.X
		case *minic.FieldExpr:
			e = x.X
		case *minic.Ident:
			return x
		default:
			return nil
		}
	}
}

// stepsToward reports whether the post clause moves the induction slot
// strictly in the given direction by a constant.
func stepsToward(post minic.Stmt, slot int, increasing bool) bool {
	switch p := post.(type) {
	case *minic.IncDecStmt:
		if !isIdentSlot(p.LHS, slot) {
			return false
		}
		return (p.Op == minic.Inc) == increasing
	case *minic.AssignStmt:
		if !isIdentSlot(p.LHS, slot) {
			return false
		}
		switch p.Op {
		case minic.PlusAssign:
			return constSign(p.RHS) > 0 == increasing && constSign(p.RHS) != 0
		case minic.MinusAssign:
			return constSign(p.RHS) > 0 != increasing && constSign(p.RHS) != 0
		case minic.Assign:
			// i = i + c  /  i = i - c
			bin, ok := p.RHS.(*minic.BinaryExpr)
			if !ok || !isIdentSlot(bin.X, slot) {
				return false
			}
			sign := constSign(bin.Y)
			if sign == 0 {
				return false
			}
			if bin.Op == minic.Minus {
				sign = -sign
			} else if bin.Op != minic.Plus {
				return false
			}
			return sign > 0 == increasing
		}
	}
	return false
}

// constSign returns the sign of an integer literal, or 0 for anything
// else (including literal zero — a zero step never reaches the bound).
func constSign(e minic.Expr) int {
	lit, ok := e.(*minic.IntLit)
	if !ok || lit.Value == 0 {
		return 0
	}
	if lit.Value > 0 {
		return 1
	}
	return -1
}

// mutatedSlots collects local slots assigned, inc/dec'd, or
// address-taken anywhere under b (including nested loops).
func mutatedSlots(b *minic.BlockStmt) map[int]bool {
	mut := map[int]bool{}
	markLHS := func(e minic.Expr) {
		if id, ok := e.(*minic.Ident); ok && !id.IsGlobal && !id.IsFunc {
			mut[id.Slot] = true
		}
	}
	minic.InspectStmts(b, func(st minic.Stmt) bool {
		switch x := st.(type) {
		case *minic.VarDeclStmt:
			mut[x.Slot] = true
		case *minic.AssignStmt:
			markLHS(x.LHS)
		case *minic.IncDecStmt:
			markLHS(x.LHS)
		}
		minic.StmtExprs(st, func(e minic.Expr) {
			minic.InspectExpr(e, func(n minic.Expr) {
				if u, ok := n.(*minic.UnaryExpr); ok && u.Op == minic.Amp {
					markLHS(u.X)
				}
			})
		})
		return true
	})
	return mut
}

// heapQuietBody reports whether the loop body performs no heap writes
// and calls nothing that could (program functions, or natives that
// write memory) — the condition under which a memory-read bound stays
// invariant.
func heapQuietBody(p *minic.Program, b *minic.BlockStmt) bool {
	quiet := true
	minic.InspectStmts(b, func(st minic.Stmt) bool {
		switch x := st.(type) {
		case *minic.AssignStmt:
			if id, ok := x.LHS.(*minic.Ident); !ok || id.IsGlobal {
				quiet = false
			}
		case *minic.IncDecStmt:
			if id, ok := x.LHS.(*minic.Ident); !ok || id.IsGlobal {
				quiet = false
			}
		}
		minic.StmtExprs(st, func(e minic.Expr) {
			minic.InspectExpr(e, func(n minic.Expr) {
				call, ok := n.(*minic.CallExpr)
				if !ok {
					return
				}
				if !call.IsBuiltin {
					quiet = false // a program call may mutate anything
					return
				}
				if NativeEffect(p.Natives.At(call.BuiltinIndex))&WritesHeap != 0 {
					quiet = false
				}
			})
		})
		return quiet
	})
	return quiet
}
