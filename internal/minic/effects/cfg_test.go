package effects

import (
	"testing"

	"d2x/internal/minic"
)

func buildFor(t *testing.T, src, fn string) (*minic.Program, *minic.FuncDecl, *CFG) {
	t.Helper()
	file, err := minic.Parse("cfg_test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := minic.Check(file, minic.NewNatives())
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	i, ok := prog.FuncByName[fn]
	if !ok {
		t.Fatalf("no function %s", fn)
	}
	fd := prog.Funcs[i]
	return prog, fd, BuildCFG(fd)
}

// findStmt returns the first statement under fd matching pred.
func findStmt(fd *minic.FuncDecl, pred func(minic.Stmt) bool) minic.Stmt {
	var found minic.Stmt
	minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
		if found == nil && pred(s) {
			found = s
		}
		return found == nil
	})
	return found
}

// TestCFGStraightLine: a straight-line body is one reachable block into
// the exit.
func TestCFGStraightLine(t *testing.T) {
	_, fd, cfg := buildFor(t, `func int f(int n) {
	int a = n + 1;
	int b = a * 2;
	return b;
}`, "f")
	reach := cfg.Reachable()
	if !reach[cfg.Entry] {
		t.Fatal("entry not reachable")
	}
	if !reach[cfg.Exit] {
		t.Fatal("exit not reachable from straight-line body")
	}
	ret := findStmt(fd, func(s minic.Stmt) bool { _, ok := s.(*minic.ReturnStmt); return ok })
	if !cfg.StmtReachable(ret) {
		t.Fatal("return not reachable")
	}
}

// TestCFGDeadAfterReturn: statements after a return land in an
// unreachable block.
func TestCFGDeadAfterReturn(t *testing.T) {
	_, fd, cfg := buildFor(t, `func int f(int n) {
	return n;
	n = n + 1;
}`, "f")
	dead := findStmt(fd, func(s minic.Stmt) bool { _, ok := s.(*minic.AssignStmt); return ok })
	if dead == nil {
		t.Fatal("no assignment found")
	}
	if cfg.StmtReachable(dead) {
		t.Fatal("statement after return must be unreachable")
	}
}

// TestCFGBreakReachability is the distinction the loop heuristic leans
// on: a break behind a live condition is reachable, a break behind an
// unconditional continue is not.
func TestCFGBreakReachability(t *testing.T) {
	isBreak := func(s minic.Stmt) bool { _, ok := s.(*minic.BreakStmt); return ok }

	_, fd, cfg := buildFor(t, `func int live(int n) {
	while (true) {
		if (n > 0) { break; }
		n = n + 1;
	}
	return n;
}`, "live")
	if br := findStmt(fd, isBreak); !cfg.StmtReachable(br) {
		t.Fatal("conditional break must be reachable")
	}

	_, fd2, cfg2 := buildFor(t, `func int deadbrk(int n) {
	while (true) {
		continue;
		break;
	}
	return n;
}`, "deadbrk")
	if br := findStmt(fd2, isBreak); cfg2.StmtReachable(br) {
		t.Fatal("break behind unconditional continue must be unreachable")
	}
}

// TestCFGWhileTrueNoExitEdge: the after-block of while(true) with no
// break is unreachable, so code after the loop is dead.
func TestCFGWhileTrueNoExitEdge(t *testing.T) {
	_, fd, cfg := buildFor(t, `func int f(int n) {
	while (true) { n = n + 1; }
	return n;
}`, "f")
	ret := findStmt(fd, func(s minic.Stmt) bool { _, ok := s.(*minic.ReturnStmt); return ok })
	if cfg.StmtReachable(ret) {
		t.Fatal("code after while(true) without break must be unreachable")
	}
}

// TestCFGForContinueTargetsPost: continue in a for loop must route
// through the post statement (the back-edge block), keeping the
// induction step on every path.
func TestCFGForContinueTargetsPost(t *testing.T) {
	_, fd, cfg := buildFor(t, `func int f(int n) {
	int acc = 0;
	for (int i = 0; i < n; i++) {
		if (i == 2) { continue; }
		acc = acc + i;
	}
	return acc;
}`, "f")
	var forStmt *minic.ForStmt
	minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
		if fs, ok := s.(*minic.ForStmt); ok {
			forStmt = fs
		}
		return true
	})
	if forStmt == nil || forStmt.Post == nil {
		t.Fatal("no for/post found")
	}
	post := cfg.BlockOf(forStmt.Post)
	if post == nil {
		t.Fatal("post statement has no block")
	}
	cont := findStmt(fd, func(s minic.Stmt) bool { _, ok := s.(*minic.ContinueStmt); return ok })
	cb := cfg.BlockOf(cont)
	if cb == nil {
		t.Fatal("continue has no block")
	}
	found := false
	for _, s := range cb.Succs {
		if s == post {
			found = true
		}
	}
	if !found {
		t.Fatal("continue must edge to the post block")
	}
}
