package minic

import "fmt"

// checker resolves names, assigns local slots, and types every expression.
type checker struct {
	file    *File
	prog    *Program
	fn      *FuncDecl
	scopes  []map[string]int // name -> slot, innermost last
	loop    int              // nesting depth of breakable loops
	helpers []*FuncDecl      // parallel_for helper functions discovered
	parCnt  int
}

// Check resolves and type-checks a parsed file against the given native
// registry, producing an executable-ready (but not yet code-generated)
// Program.
func Check(file *File, natives *Natives) (*Program, error) {
	prog := &Program{
		SourceName:   file.Name,
		Structs:      map[string]*StructDef{},
		FuncByName:   map[string]int{},
		GlobalByName: map[string]int{},
		Natives:      natives,
	}
	c := &checker{file: file, prog: prog}

	for _, sd := range file.Structs {
		if _, dup := prog.Structs[sd.Name]; dup {
			return nil, c.err(sd.Line, "duplicate struct %q", sd.Name)
		}
		prog.Structs[sd.Name] = sd
	}
	for _, sd := range file.Structs {
		for _, f := range sd.Fields {
			if err := c.validType(f.Type, sd.Line); err != nil {
				return nil, err
			}
		}
	}
	for _, g := range file.Globals {
		if _, dup := prog.GlobalByName[g.Name]; dup {
			return nil, c.err(g.Line, "duplicate global %q", g.Name)
		}
		if err := c.validType(g.Type, g.Line); err != nil {
			return nil, err
		}
		if g.Type.Kind == TVoid {
			return nil, c.err(g.Line, "global %q cannot have type void", g.Name)
		}
		g.Index = len(prog.Globals)
		prog.GlobalByName[g.Name] = g.Index
		prog.Globals = append(prog.Globals, g)
	}
	for _, fd := range file.Funcs {
		if _, dup := prog.FuncByName[fd.Name]; dup {
			return nil, c.err(fd.Line, "duplicate function %q", fd.Name)
		}
		if _, _, isNative := natives.Lookup(fd.Name); isNative {
			return nil, c.err(fd.Line, "function %q collides with a native function", fd.Name)
		}
		fd.Index = len(prog.Funcs)
		prog.FuncByName[fd.Name] = fd.Index
		prog.Funcs = append(prog.Funcs, fd)
	}

	// Global initialisers must be literal constants (negated literals
	// allowed); anything richer belongs in an __init function.
	for _, g := range file.Globals {
		if g.Init == nil {
			continue
		}
		if err := c.checkExpr(g.Init); err != nil {
			return nil, err
		}
		if !isConstExpr(g.Init) {
			return nil, c.err(g.Line, "global initialiser for %q must be a constant literal", g.Name)
		}
		if !assignable(g.Type, g.Init.Type()) {
			return nil, c.err(g.Line, "cannot initialise %s global %q with %s",
				g.Type, g.Name, g.Init.Type())
		}
	}

	for _, fd := range file.Funcs {
		if err := c.checkFunc(fd); err != nil {
			return nil, err
		}
	}
	// parallel_for helpers were appended to prog.Funcs during checkFunc;
	// they are already checked.
	return prog, nil
}

func (c *checker) err(line int, format string, args ...any) error {
	return errf(c.file.Name, line, 0, "%s", fmt.Sprintf(format, args...))
}

func (c *checker) validType(t *Type, line int) error {
	switch t.Kind {
	case TPointer, TArray:
		return c.validType(t.Elem, line)
	case TStruct:
		if _, ok := c.prog.Structs[t.Name]; !ok {
			return c.err(line, "unknown type %q", t.Name)
		}
	}
	return nil
}

func isConstExpr(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *BoolLit, *StringLit, *NullLit:
		return true
	case *UnaryExpr:
		return x.Op == Minus && isConstExpr(x.X)
	}
	return false
}

// assignable reports whether a value of type from may be assigned to a
// location of type to. int widens to float; null converts to any
// reference; any converts both ways (native void*-style results).
func assignable(to, from *Type) bool {
	if to == nil || from == nil {
		return false
	}
	if to.Kind == TAny || from.Kind == TAny {
		return true
	}
	if to.Equal(from) {
		return true
	}
	if to.Kind == TFloat && from.Kind == TInt {
		return true
	}
	if to.IsReference() && from.Kind == TVoid {
		return false
	}
	if to.IsReference() && from.Kind == TPointer && from.Elem == nil {
		return true // typed null
	}
	return false
}

// nullType is the type given to the `null` literal: a pointer with nil
// element, assignable to every reference type.
var nullType = &Type{Kind: TPointer}

func (c *checker) checkFunc(fd *FuncDecl) error {
	if err := c.validType(fd.Result, fd.Line); err != nil {
		return err
	}
	c.fn = fd
	c.scopes = []map[string]int{{}}
	c.loop = 0
	fd.NumSlots = 0
	fd.SlotNames = nil
	fd.SlotTypes = nil
	for _, p := range fd.Params {
		if err := c.validType(p.Type, fd.Line); err != nil {
			return err
		}
		if p.Type.Kind == TVoid {
			return c.err(fd.Line, "parameter %q of %q cannot be void", p.Name, fd.Name)
		}
		if _, dup := c.scopes[0][p.Name]; dup {
			return c.err(fd.Line, "duplicate parameter %q in %q", p.Name, fd.Name)
		}
		c.declareSlot(p.Name, p.Type)
	}
	if err := c.checkBlock(fd.Body); err != nil {
		return err
	}
	return nil
}

func (c *checker) declareSlot(name string, t *Type) int {
	slot := c.fn.NumSlots
	c.fn.NumSlots++
	c.fn.SlotNames = append(c.fn.SlotNames, name)
	c.fn.SlotTypes = append(c.fn.SlotTypes, t)
	c.scopes[len(c.scopes)-1][name] = slot
	return slot
}

func (c *checker) lookup(name string) (slot int, ok bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, found := c.scopes[i][name]; found {
			return s, true
		}
	}
	return 0, false
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]int{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) checkBlock(b *BlockStmt) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return c.checkBlock(st)

	case *VarDeclStmt:
		if err := c.validType(st.Type, st.Line); err != nil {
			return err
		}
		if st.Type.Kind == TVoid {
			return c.err(st.Line, "variable %q cannot have type void", st.Name)
		}
		if st.Init != nil {
			if err := c.checkExprInto(st.Init, st.Type); err != nil {
				return err
			}
			if !assignable(st.Type, st.Init.Type()) {
				return c.err(st.Line, "cannot initialise %s variable %q with %s",
					st.Type, st.Name, st.Init.Type())
			}
		}
		if _, dup := c.scopes[len(c.scopes)-1][st.Name]; dup {
			return c.err(st.Line, "variable %q redeclared in this scope", st.Name)
		}
		st.Slot = c.declareSlot(st.Name, st.Type)
		return nil

	case *AssignStmt:
		if err := c.checkExpr(st.LHS); err != nil {
			return err
		}
		if !isAddressable(st.LHS) {
			return c.err(st.Line, "left-hand side of assignment is not addressable")
		}
		if err := c.checkExprInto(st.RHS, st.LHS.Type()); err != nil {
			return err
		}
		lt, rt := st.LHS.Type(), st.RHS.Type()
		switch st.Op {
		case Assign:
			if !assignable(lt, rt) {
				return c.err(st.Line, "cannot assign %s to %s", rt, lt)
			}
		case PlusAssign:
			if lt.Kind == TString {
				if rt.Kind != TString {
					return c.err(st.Line, "cannot append %s to string", rt)
				}
				return nil
			}
			if !lt.IsNumeric() || !assignable(lt, rt) {
				return c.err(st.Line, "invalid operands to +=: %s and %s", lt, rt)
			}
		case MinusAssign:
			if !lt.IsNumeric() || !assignable(lt, rt) {
				return c.err(st.Line, "invalid operands to -=: %s and %s", lt, rt)
			}
		}
		return nil

	case *IncDecStmt:
		if err := c.checkExpr(st.LHS); err != nil {
			return err
		}
		if !isAddressable(st.LHS) {
			return c.err(st.Line, "operand of %s is not addressable", st.Op)
		}
		if st.LHS.Type().Kind != TInt {
			return c.err(st.Line, "operand of %s must be int, have %s", st.Op, st.LHS.Type())
		}
		return nil

	case *ExprStmt:
		return c.checkExpr(st.X)

	case *IfStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if st.Cond.Type().Kind != TBool {
			return c.err(st.Line, "if condition must be bool, have %s", st.Cond.Type())
		}
		if err := c.checkBlock(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil

	case *WhileStmt:
		if err := c.checkExpr(st.Cond); err != nil {
			return err
		}
		if st.Cond.Type().Kind != TBool {
			return c.err(st.Line, "while condition must be bool, have %s", st.Cond.Type())
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)

	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.checkExpr(st.Cond); err != nil {
				return err
			}
			if st.Cond.Type().Kind != TBool {
				return c.err(st.Line, "for condition must be bool, have %s", st.Cond.Type())
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loop++
		defer func() { c.loop-- }()
		return c.checkBlock(st.Body)

	case *ParallelForStmt:
		return c.checkParallelFor(st)

	case *ReturnStmt:
		want := c.fn.Result
		if st.X == nil {
			if want.Kind != TVoid {
				return c.err(st.Line, "missing return value in %q (want %s)", c.fn.Name, want)
			}
			return nil
		}
		if want.Kind == TVoid {
			return c.err(st.Line, "unexpected return value in void function %q", c.fn.Name)
		}
		if err := c.checkExprInto(st.X, want); err != nil {
			return err
		}
		if !assignable(want, st.X.Type()) {
			return c.err(st.Line, "cannot return %s from %q (want %s)", st.X.Type(), c.fn.Name, want)
		}
		return nil

	case *BreakStmt:
		if c.loop == 0 {
			return c.err(st.Line, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if c.loop == 0 {
			return c.err(st.Line, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// checkParallelFor lifts the loop body into a hidden helper function whose
// frame shares cells with the spawning frame for every captured variable.
func (c *checker) checkParallelFor(st *ParallelForStmt) error {
	if err := c.checkExprInto(st.Lo, IntType); err != nil {
		return err
	}
	if err := c.checkExprInto(st.Hi, IntType); err != nil {
		return err
	}
	if st.Lo.Type().Kind != TInt || st.Hi.Type().Kind != TInt {
		return c.err(st.Line, "parallel_for bounds must be int")
	}

	// Find captured variables: free identifiers in the body that resolve
	// to locals of the enclosing function (not globals/functions/natives).
	captured := []string{}
	capturedSet := map[string]bool{}
	declared := map[string]bool{st.Var: true}
	collectCaptures(st.Body, declared, func(name string) {
		if capturedSet[name] {
			return
		}
		if _, ok := c.lookup(name); ok {
			capturedSet[name] = true
			captured = append(captured, name)
		}
	})

	outer := c.fn
	helper := &FuncDecl{
		Name:   fmt.Sprintf("%s$par%d", outer.Name, c.parCnt),
		Result: VoidType,
		Body:   st.Body,
		Line:   st.Line,
	}
	c.parCnt++
	helper.Params = append(helper.Params, Param{Name: st.Var, Type: IntType})
	st.capturedSlot = nil
	for _, name := range captured {
		slot, _ := c.lookup(name)
		st.capturedSlot = append(st.capturedSlot, slot)
		helper.Params = append(helper.Params, Param{Name: name, Type: outer.SlotTypes[slot]})
	}
	st.CapturedVars = captured
	st.Slot = 0

	helper.Index = len(c.prog.Funcs)
	c.prog.FuncByName[helper.Name] = helper.Index
	c.prog.Funcs = append(c.prog.Funcs, helper)
	st.HelperIndex = helper.Index

	// Check the helper body in a fresh function context.
	savedFn, savedScopes, savedLoop, savedPar := c.fn, c.scopes, c.loop, c.parCnt
	err := c.checkFunc(helper)
	c.fn, c.scopes, c.loop, c.parCnt = savedFn, savedScopes, savedLoop, savedPar
	return err
}

// collectCaptures walks the statement tree invoking found for every
// identifier that is not declared within the tree itself.
func collectCaptures(s Stmt, declared map[string]bool, found func(string)) {
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case nil:
		case *Ident:
			if !declared[x.Name] {
				found(x.Name)
			}
		case *BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *UnaryExpr:
			walkExpr(x.X)
		case *IndexExpr:
			walkExpr(x.X)
			walkExpr(x.Index)
		case *FieldExpr:
			walkExpr(x.X)
		case *CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *NewExpr:
			if x.Count != nil {
				walkExpr(x.Count)
			}
		case *CastExpr:
			walkExpr(x.X)
		}
	}
	var walkStmt func(s Stmt)
	walkStmt = func(s Stmt) {
		switch st := s.(type) {
		case nil:
		case *BlockStmt:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		case *VarDeclStmt:
			walkExpr(st.Init)
			declared[st.Name] = true
		case *AssignStmt:
			walkExpr(st.LHS)
			walkExpr(st.RHS)
		case *IncDecStmt:
			walkExpr(st.LHS)
		case *ExprStmt:
			walkExpr(st.X)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			walkStmt(st.Else)
		case *WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		case *ForStmt:
			walkStmt(st.Init)
			walkExpr(st.Cond)
			walkStmt(st.Post)
			walkStmt(st.Body)
		case *ParallelForStmt:
			walkExpr(st.Lo)
			walkExpr(st.Hi)
			saved := declared[st.Var]
			declared[st.Var] = true
			walkStmt(st.Body)
			declared[st.Var] = saved
		case *ReturnStmt:
			walkExpr(st.X)
		}
	}
	walkStmt(s)
}

func isAddressable(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return !x.IsFunc
	case *IndexExpr:
		return true
	case *FieldExpr:
		return true
	case *UnaryExpr:
		return x.Op == Star
	}
	return false
}

// checkExprInto checks e and, when e is a call to an any-result native,
// adopts the destination type. This is the mini-C analogue of assigning a
// void* result in C, which D2X-R's find_stack_var relies on (Figure 7 of
// the paper assigns it to a frontier_t**).
func (c *checker) checkExprInto(e Expr, want *Type) error {
	if err := c.checkExpr(e); err != nil {
		return err
	}
	if call, ok := e.(*CallExpr); ok && call.typ != nil && call.typ.Kind == TAny && want != nil {
		call.typ = want
	}
	return nil
}

func (c *checker) checkExpr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		x.typ = IntType
	case *FloatLit:
		x.typ = FloatType
	case *BoolLit:
		x.typ = BoolType
	case *StringLit:
		x.typ = StringType
	case *NullLit:
		x.typ = nullType

	case *Ident:
		if slot, ok := c.lookup(x.Name); ok {
			x.Slot = slot
			x.typ = c.fn.SlotTypes[slot]
			return nil
		}
		if gi, ok := c.prog.GlobalByName[x.Name]; ok {
			x.IsGlobal = true
			x.GlobalIndex = gi
			x.typ = c.prog.Globals[gi].Type
			return nil
		}
		if fi, ok := c.prog.FuncByName[x.Name]; ok {
			x.IsFunc = true
			x.FuncIndex = fi
			x.typ = VoidType
			return nil
		}
		return c.err(x.Line, "undefined identifier %q", x.Name)

	case *BinaryExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Y); err != nil {
			return err
		}
		xt, yt := x.X.Type(), x.Y.Type()
		switch x.Op {
		case Plus:
			if xt.Kind == TString && yt.Kind == TString {
				x.typ = StringType
				return nil
			}
			fallthrough
		case Minus, Star, Slash:
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return c.err(x.Line, "invalid operands to %s: %s and %s", x.Op, xt, yt)
			}
			if xt.Kind == TFloat || yt.Kind == TFloat {
				x.typ = FloatType
			} else {
				x.typ = IntType
			}
		case Percent, Shl, Shr:
			if xt.Kind != TInt || yt.Kind != TInt {
				return c.err(x.Line, "operands of %s must be int, have %s and %s", x.Op, xt, yt)
			}
			x.typ = IntType
		case Lt, Le, Gt, Ge:
			if xt.Kind == TString && yt.Kind == TString {
				x.typ = BoolType
				return nil
			}
			if !xt.IsNumeric() || !yt.IsNumeric() {
				return c.err(x.Line, "invalid operands to %s: %s and %s", x.Op, xt, yt)
			}
			x.typ = BoolType
		case Eq, Neq:
			ok := (xt.IsNumeric() && yt.IsNumeric()) ||
				(xt.Kind == yt.Kind && (xt.Kind == TBool || xt.Kind == TString)) ||
				(xt.IsReference() && (yt.IsReference() || yt == nullType)) ||
				(yt.IsReference() && xt == nullType) ||
				(xt == nullType && yt == nullType) ||
				xt.Kind == TAny || yt.Kind == TAny
			if !ok {
				return c.err(x.Line, "invalid comparison between %s and %s", xt, yt)
			}
			x.typ = BoolType
		case AndAnd, OrOr:
			if xt.Kind != TBool || yt.Kind != TBool {
				return c.err(x.Line, "operands of %s must be bool, have %s and %s", x.Op, xt, yt)
			}
			x.typ = BoolType
		default:
			return c.err(x.Line, "unknown binary operator %s", x.Op)
		}

	case *UnaryExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		xt := x.X.Type()
		switch x.Op {
		case Minus:
			if !xt.IsNumeric() {
				return c.err(x.Line, "operand of unary - must be numeric, have %s", xt)
			}
			x.typ = xt
		case Not:
			if xt.Kind != TBool {
				return c.err(x.Line, "operand of ! must be bool, have %s", xt)
			}
			x.typ = BoolType
		case Amp:
			if !isAddressable(x.X) {
				return c.err(x.Line, "cannot take address of this expression")
			}
			x.typ = PointerTo(xt)
		case Star:
			if xt.Kind != TPointer || xt.Elem == nil {
				return c.err(x.Line, "cannot dereference %s", xt)
			}
			x.typ = xt.Elem
		}

	case *IndexExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		if err := c.checkExpr(x.Index); err != nil {
			return err
		}
		if x.Index.Type().Kind != TInt {
			return c.err(x.Line, "array index must be int, have %s", x.Index.Type())
		}
		xt := x.X.Type()
		if xt.Kind != TArray {
			return c.err(x.Line, "cannot index %s", xt)
		}
		x.typ = xt.Elem

	case *FieldExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		xt := x.X.Type()
		if x.Arrow {
			if xt.Kind != TPointer || xt.Elem == nil || xt.Elem.Kind != TStruct {
				return c.err(x.Line, "-> requires a struct pointer, have %s", xt)
			}
			xt = xt.Elem
		}
		if xt.Kind != TStruct {
			return c.err(x.Line, ". requires a struct, have %s", xt)
		}
		sd, ok := c.prog.Structs[xt.Name]
		if !ok {
			return c.err(x.Line, "unknown struct %q", xt.Name)
		}
		fi := sd.FieldIndex(x.Name)
		if fi < 0 {
			return c.err(x.Line, "struct %q has no field %q", xt.Name, x.Name)
		}
		x.FieldIndex = fi
		x.typ = sd.Fields[fi].Type

	case *CallExpr:
		return c.checkCall(x)

	case *NewExpr:
		if err := c.validType(x.ElemType, x.Line); err != nil {
			return err
		}
		if x.Count != nil {
			if err := c.checkExpr(x.Count); err != nil {
				return err
			}
			if x.Count.Type().Kind != TInt {
				return c.err(x.Line, "array size must be int, have %s", x.Count.Type())
			}
			x.typ = ArrayOf(x.ElemType)
		} else {
			if x.ElemType.Kind != TStruct {
				return c.err(x.Line, "new without a size requires a struct type, have %s", x.ElemType)
			}
			x.typ = PointerTo(x.ElemType)
		}

	case *CastExpr:
		if err := c.checkExpr(x.X); err != nil {
			return err
		}
		src := x.X.Type()
		dst := x.Target
		ok := false
		switch dst.Kind {
		case TInt:
			ok = src.IsNumeric() || src.Kind == TBool
		case TFloat:
			ok = src.IsNumeric()
		case TBool:
			ok = src.Kind == TBool || src.Kind == TInt
		case TString:
			ok = src.Kind == TString
		}
		if !ok {
			return c.err(x.Line, "cannot convert %s to %s", src, dst)
		}
		x.typ = dst

	default:
		return fmt.Errorf("minic: unknown expression %T", e)
	}
	return nil
}

func (c *checker) checkCall(x *CallExpr) error {
	for _, a := range x.Args {
		if err := c.checkExpr(a); err != nil {
			return err
		}
	}
	// Specially typed core builtins first.
	switch x.Callee {
	case "printf":
		if len(x.Args) < 1 || x.Args[0].Type().Kind != TString {
			return c.err(x.Line, "printf requires a string format as first argument")
		}
		x.typ = VoidType
		return c.markNative(x)
	case "to_str":
		if len(x.Args) != 1 {
			return c.err(x.Line, "to_str takes exactly one argument")
		}
		x.typ = StringType
		return c.markNative(x)
	case "len":
		if len(x.Args) != 1 || x.Args[0].Type().Kind != TArray {
			return c.err(x.Line, "len takes exactly one array argument")
		}
		x.typ = IntType
		return c.markNative(x)
	case "atomic_add":
		if len(x.Args) != 2 {
			return c.err(x.Line, "atomic_add takes a pointer and a value")
		}
		pt := x.Args[0].Type()
		if pt.Kind != TPointer || pt.Elem == nil || !pt.Elem.IsNumeric() {
			return c.err(x.Line, "atomic_add first argument must point to a numeric value, have %s", pt)
		}
		if !assignable(pt.Elem, x.Args[1].Type()) {
			return c.err(x.Line, "atomic_add value %s does not match pointee %s", x.Args[1].Type(), pt.Elem)
		}
		x.typ = VoidType
		return c.markNative(x)
	case "atomic_min":
		if len(x.Args) != 2 {
			return c.err(x.Line, "atomic_min takes a pointer and a value")
		}
		pt := x.Args[0].Type()
		if pt.Kind != TPointer || pt.Elem == nil || !pt.Elem.IsNumeric() {
			return c.err(x.Line, "atomic_min first argument must point to a numeric value, have %s", pt)
		}
		x.typ = BoolType
		return c.markNative(x)
	case "cas":
		if len(x.Args) != 3 {
			return c.err(x.Line, "cas takes a pointer, an expected value, and a new value")
		}
		pt := x.Args[0].Type()
		if pt.Kind != TPointer || pt.Elem == nil {
			return c.err(x.Line, "cas first argument must be a pointer, have %s", pt)
		}
		x.typ = BoolType
		return c.markNative(x)
	}

	if nat, idx, ok := c.prog.Natives.Lookup(x.Callee); ok {
		if nat.Variadic {
			if len(x.Args) < len(nat.Sig.Params) {
				return c.err(x.Line, "%s requires at least %d arguments, have %d",
					x.Callee, len(nat.Sig.Params), len(x.Args))
			}
		} else if len(x.Args) != len(nat.Sig.Params) {
			return c.err(x.Line, "%s requires %d arguments, have %d",
				x.Callee, len(nat.Sig.Params), len(x.Args))
		}
		for i, pt := range nat.Sig.Params {
			if !assignable(pt, x.Args[i].Type()) {
				return c.err(x.Line, "argument %d of %s: cannot use %s as %s",
					i+1, x.Callee, x.Args[i].Type(), pt)
			}
		}
		x.IsBuiltin = true
		x.BuiltinIndex = idx
		if nat.AnyResult {
			x.typ = AnyType
		} else {
			x.typ = nat.Sig.Result
		}
		return nil
	}

	fi, ok := c.prog.FuncByName[x.Callee]
	if !ok {
		return c.err(x.Line, "call to undefined function %q", x.Callee)
	}
	fd := c.prog.Funcs[fi]
	if len(x.Args) != len(fd.Params) {
		return c.err(x.Line, "%s requires %d arguments, have %d",
			x.Callee, len(fd.Params), len(x.Args))
	}
	for i, p := range fd.Params {
		if !assignable(p.Type, x.Args[i].Type()) {
			return c.err(x.Line, "argument %d of %s: cannot use %s as %s",
				i+1, x.Callee, x.Args[i].Type(), p.Type)
		}
	}
	x.FuncIndex = fi
	x.typ = fd.Result
	return nil
}

func (c *checker) markNative(x *CallExpr) error {
	nat, idx, ok := c.prog.Natives.Lookup(x.Callee)
	if !ok || nat == nil {
		return c.err(x.Line, "core builtin %q is not registered", x.Callee)
	}
	x.IsBuiltin = true
	x.BuiltinIndex = idx
	return nil
}
