package minic

import (
	"fmt"
	"math"
	"strings"
)

// registerCoreBuiltins installs the natives every generated program may
// assume, the analogue of libc plus a few parallel-runtime helpers. The
// atomic_* operations execute inside a single native call and therefore a
// single scheduler step, which is what makes them atomic with respect to
// the VM's instruction-interleaved logical threads — while a plain `+=`
// compiles to several instructions and can race, exactly like the
// atomicAdd vs += distinction in GraphIt's push vs pull code (paper Fig 2).
func registerCoreBuiltins(n *Natives) {
	n.Register(&Native{
		Name:     "printf",
		Sig:      Signature{Params: []*Type{StringType}, Result: VoidType},
		Variadic: true,
		Handler: func(call *NativeCall) (Value, error) {
			out, err := FormatPrintf(call.Args[0].S, call.Args[1:])
			if err != nil {
				return NullVal(), err
			}
			fmt.Fprint(call.VM.Output, out)
			return NullVal(), nil
		},
	})
	n.Register(&Native{
		Name: "to_str",
		Sig:  Signature{Params: []*Type{AnyType}, Result: StringType},
		Handler: func(call *NativeCall) (Value, error) {
			return StrVal(ToStr(call.Args[0])), nil
		},
	})
	n.Register(&Native{
		Name: "len",
		Sig:  Signature{Params: []*Type{AnyType}, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			a := call.Args[0]
			if a.Kind != VArr || a.Arr == nil {
				return NullVal(), fmt.Errorf("len of null array")
			}
			return IntVal(int64(a.Arr.Len())), nil
		},
	})
	n.Register(&Native{
		Name: "str_len",
		Sig:  Signature{Params: []*Type{StringType}, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			return IntVal(int64(len(call.Args[0].S))), nil
		},
	})
	n.Register(&Native{
		Name:         "atomic_add",
		Sig:          Signature{Params: []*Type{AnyType, AnyType}, Result: VoidType},
		WritesMemory: true,
		Handler: func(call *NativeCall) (Value, error) {
			p, v := call.Args[0], call.Args[1]
			if p.Kind != VPtr || p.Ptr == nil {
				return NullVal(), fmt.Errorf("atomic_add on null pointer")
			}
			old := p.Ptr.V
			if old.Kind == VFloat || v.Kind == VFloat {
				p.Ptr.V = FloatVal(old.AsFloat() + v.AsFloat())
			} else {
				p.Ptr.V = IntVal(old.I + v.I)
			}
			return NullVal(), nil
		},
	})
	n.Register(&Native{
		Name:         "atomic_min",
		Sig:          Signature{Params: []*Type{AnyType, AnyType}, Result: BoolType},
		WritesMemory: true,
		Handler: func(call *NativeCall) (Value, error) {
			p, v := call.Args[0], call.Args[1]
			if p.Kind != VPtr || p.Ptr == nil {
				return NullVal(), fmt.Errorf("atomic_min on null pointer")
			}
			old := p.Ptr.V
			if old.Kind == VFloat || v.Kind == VFloat {
				if v.AsFloat() < old.AsFloat() {
					p.Ptr.V = FloatVal(v.AsFloat())
					return BoolVal(true), nil
				}
				return BoolVal(false), nil
			}
			if v.I < old.I {
				p.Ptr.V = v
				return BoolVal(true), nil
			}
			return BoolVal(false), nil
		},
	})
	n.Register(&Native{
		Name:         "cas",
		Sig:          Signature{Params: []*Type{AnyType, AnyType, AnyType}, Result: BoolType},
		WritesMemory: true,
		Handler: func(call *NativeCall) (Value, error) {
			p, expect, repl := call.Args[0], call.Args[1], call.Args[2]
			if p.Kind != VPtr || p.Ptr == nil {
				return NullVal(), fmt.Errorf("cas on null pointer")
			}
			if ValuesEqual(p.Ptr.V, expect) {
				p.Ptr.V = repl
				return BoolVal(true), nil
			}
			return BoolVal(false), nil
		},
	})
	n.Register(&Native{
		Name: "assert",
		Sig:  Signature{Params: []*Type{BoolType, StringType}, Result: VoidType},
		Handler: func(call *NativeCall) (Value, error) {
			if !call.Args[0].Bool() {
				return NullVal(), fmt.Errorf("assertion failed: %s", call.Args[1].S)
			}
			return NullVal(), nil
		},
	})
	n.Register(&Native{
		Name: "fabs",
		Sig:  Signature{Params: []*Type{FloatType}, Result: FloatType},
		Handler: func(call *NativeCall) (Value, error) {
			return FloatVal(math.Abs(call.Args[0].AsFloat())), nil
		},
	})
	n.Register(&Native{
		Name: "sqrt",
		Sig:  Signature{Params: []*Type{FloatType}, Result: FloatType},
		Handler: func(call *NativeCall) (Value, error) {
			return FloatVal(math.Sqrt(call.Args[0].AsFloat())), nil
		},
	})
	n.Register(&Native{
		Name: "min_int",
		Sig:  Signature{Params: []*Type{IntType, IntType}, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			return IntVal(min(call.Args[0].I, call.Args[1].I)), nil
		},
	})
	n.Register(&Native{
		Name: "max_int",
		Sig:  Signature{Params: []*Type{IntType, IntType}, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			return IntVal(max(call.Args[0].I, call.Args[1].I)), nil
		},
	})
	n.Register(&Native{
		Name: "thread_id",
		Sig:  Signature{Params: nil, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			return IntVal(int64(call.Thread.ID)), nil
		},
	})
	n.Register(&Native{
		Name: "num_workers",
		Sig:  Signature{Params: nil, Result: IntType},
		Handler: func(call *NativeCall) (Value, error) {
			return IntVal(int64(call.VM.NumWorkers)), nil
		},
	})
}

// FormatPrintf implements the mini-C printf verbs: %d (int), %f (float,
// default precision), %s (string), %v (any value, debugger formatting),
// %b (bool), and %% (literal percent). It is exported so the debugger can
// reuse it for its own format-string handling (the `eval` command).
func FormatPrintf(format string, args []Value) (string, error) {
	// A bare "%s" applied to one string is the identity. This is the
	// debugger's eval hot path — D2X's xbreak/xdel expand a string the
	// debuggee runtime already assembled — so skip the builder entirely.
	if format == "%s" && len(args) == 1 && args[0].Kind == VStr {
		return args[0].S, nil
	}
	var b strings.Builder
	argi := 0
	nextArg := func() (Value, error) {
		if argi >= len(args) {
			return Value{}, fmt.Errorf("printf: too few arguments for format %q", format)
		}
		v := args[argi]
		argi++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			b.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			return "", fmt.Errorf("printf: trailing %% in format %q", format)
		}
		switch format[i] {
		case '%':
			b.WriteByte('%')
		case 'd':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%d", v.I)
		case 'f':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%g", v.AsFloat())
		case 's':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			b.WriteString(v.S)
		case 'b':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%t", v.Bool())
		case 'v':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			b.WriteString(ToStr(v))
		default:
			return "", fmt.Errorf("printf: unknown verb %%%c", format[i])
		}
	}
	if argi != len(args) {
		return "", fmt.Errorf("printf: %d extra arguments for format %q", len(args)-argi, format)
	}
	return b.String(), nil
}
