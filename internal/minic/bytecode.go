package minic

import "fmt"

// OpCode enumerates the VM's instructions. The VM is a stack machine; each
// frame has its own operand stack. Instructions carry the source line of
// the generated program they came from, which is exactly the information a
// native compiler would put into DWARF line tables.
type OpCode int

const (
	OpNop         OpCode = iota
	OpConst              // push Consts[A]
	OpLoadLocal          // push slot A
	OpStoreLocal         // pop -> slot A
	OpAddrLocal          // push pointer to slot A
	OpLoadGlobal         // push global A
	OpStoreGlobal        // pop -> global A
	OpAddrGlobal         // push pointer to global A
	OpLoadInd            // pop ptr; push *ptr
	OpStoreInd           // pop value, pop ptr; *ptr = value
	OpIndexLoad          // pop idx, pop arr; push arr[idx]
	OpIndexAddr          // pop idx, pop arr; push &arr[idx]
	OpFieldLoad          // pop struct; push field A
	OpFieldAddr          // pop struct; push &field A
	OpBin                // pop y, x; push x (Kind A) y
	OpUn                 // pop x; push (Kind A) x
	OpJmp                // pc = A
	OpJmpFalse           // pop bool; if false pc = A
	OpJmpTrue            // pop bool; if true pc = A
	OpCall               // call Funcs[A] with B args popped from stack
	OpCallNative         // call Natives[A] with B args
	OpRet                // return void
	OpRetVal             // pop result; return it
	OpPop                // pop and discard
	OpDup                // duplicate top of stack
	OpNewArr             // pop count; push new array of Types[A]
	OpNewStruct          // push new struct StructRefs[A]
	OpCastInt            // pop; push int conversion
	OpCastFloat          // pop; push float conversion
	OpCastBool           // pop; push bool conversion
	OpParFor             // pop hi, lo; run ParFors[A] across logical threads
	OpHalt               // stop the thread (used by synthetic drivers)
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpLoadLocal: "loadl", OpStoreLocal: "storel",
	OpAddrLocal: "addrl", OpLoadGlobal: "loadg", OpStoreGlobal: "storeg",
	OpAddrGlobal: "addrg", OpLoadInd: "loadind", OpStoreInd: "storeind",
	OpIndexLoad: "index", OpIndexAddr: "indexaddr", OpFieldLoad: "field",
	OpFieldAddr: "fieldaddr", OpBin: "bin", OpUn: "un", OpJmp: "jmp",
	OpJmpFalse: "jmpf", OpJmpTrue: "jmpt", OpCall: "call",
	OpCallNative: "callnat", OpRet: "ret", OpRetVal: "retval", OpPop: "pop",
	OpDup: "dup", OpNewArr: "newarr", OpNewStruct: "newstruct",
	OpCastInt: "casti", OpCastFloat: "castf", OpCastBool: "castb",
	OpParFor: "parfor", OpHalt: "halt",
}

func (o OpCode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one VM instruction.
type Instr struct {
	Op        OpCode
	A, B      int
	Line      int  // 1-based line in the generated source file
	StmtStart bool // true when this instruction begins a source statement
}

func (in Instr) String() string {
	s := fmt.Sprintf("%-9s %d %d", in.Op, in.A, in.B)
	if in.StmtStart {
		s += "  ; stmt"
	}
	return fmt.Sprintf("%s @%d", s, in.Line)
}

// ParForInfo describes one parallel_for site: the helper function compiled
// from the loop body and which enclosing slots it captures by reference.
type ParForInfo struct {
	Helper   int   // Program.Funcs index
	Captured []int // enclosing frame slots shared with the helper frame
}

// FuncCode is the compiled body of one function.
type FuncCode struct {
	Name       string
	Instrs     []Instr
	Consts     []Value
	Types      []*Type      // referenced by OpNewArr
	StructRefs []*StructDef // referenced by OpNewStruct
	ParFors    []ParForInfo
	NumSlots   int
	NumParams  int
}

// LineOf returns the source line of the instruction at pc, or 0.
func (fc *FuncCode) LineOf(pc int) int {
	if pc < 0 || pc >= len(fc.Instrs) {
		return 0
	}
	return fc.Instrs[pc].Line
}

// StmtPCs returns the program counters of every statement-start instruction
// on the given source line. Breakpoints bind to these.
func (fc *FuncCode) StmtPCs(line int) []int {
	var pcs []int
	for pc, in := range fc.Instrs {
		if in.StmtStart && in.Line == line {
			pcs = append(pcs, pc)
		}
	}
	return pcs
}
