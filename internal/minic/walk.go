package minic

// AST traversal helpers for analysis passes (the d2xverify linter, and
// any future tooling that inspects checked programs).

// InspectStmts walks every statement under b depth-first in source
// order, calling fn before descending. fn returning false prunes the
// walk below that statement (its nested blocks are skipped). Note that
// ParallelForStmt bodies ARE visited; analyses that treat the helper
// function as a separate unit must prune there.
func InspectStmts(b *BlockStmt, fn func(Stmt) bool) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		inspectStmt(s, fn)
	}
}

func inspectStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch st := s.(type) {
	case *BlockStmt:
		for _, c := range st.Stmts {
			inspectStmt(c, fn)
		}
	case *IfStmt:
		inspectStmt(st.Then, fn)
		if st.Else != nil {
			inspectStmt(st.Else, fn)
		}
	case *WhileStmt:
		inspectStmt(st.Body, fn)
	case *ForStmt:
		if st.Init != nil {
			inspectStmt(st.Init, fn)
		}
		if st.Post != nil {
			inspectStmt(st.Post, fn)
		}
		inspectStmt(st.Body, fn)
	case *ParallelForStmt:
		inspectStmt(st.Body, fn)
	}
}

// StmtExprs calls fn for each top-level expression owned directly by s
// (conditions, initialisers, operands) without descending into nested
// statements or into sub-expressions; combine with InspectExpr for a
// deep expression walk.
func StmtExprs(s Stmt, fn func(Expr)) {
	emit := func(e Expr) {
		if e != nil {
			fn(e)
		}
	}
	switch st := s.(type) {
	case *VarDeclStmt:
		emit(st.Init)
	case *AssignStmt:
		emit(st.LHS)
		emit(st.RHS)
	case *IncDecStmt:
		emit(st.LHS)
	case *ExprStmt:
		emit(st.X)
	case *IfStmt:
		emit(st.Cond)
	case *WhileStmt:
		emit(st.Cond)
	case *ForStmt:
		emit(st.Cond)
	case *ParallelForStmt:
		emit(st.Lo)
		emit(st.Hi)
	case *ReturnStmt:
		emit(st.X)
	}
}

// InspectExpr walks the expression tree rooted at e depth-first,
// calling fn on every node including e itself.
func InspectExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		InspectExpr(x.X, fn)
		InspectExpr(x.Y, fn)
	case *UnaryExpr:
		InspectExpr(x.X, fn)
	case *IndexExpr:
		InspectExpr(x.X, fn)
		InspectExpr(x.Index, fn)
	case *FieldExpr:
		InspectExpr(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			InspectExpr(a, fn)
		}
	case *NewExpr:
		InspectExpr(x.Count, fn)
	case *CastExpr:
		InspectExpr(x.X, fn)
	}
}
