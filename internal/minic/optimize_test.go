package minic

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func optimizeSource(t *testing.T, src string) (string, int) {
	t.Helper()
	f, err := Parse("opt.c", src)
	if err != nil {
		t.Fatal(err)
	}
	n := Optimize(f)
	return Print(f), n
}

func TestConstantFolding(t *testing.T) {
	out, n := optimizeSource(t, `
func int main() {
	int a = 2 + 3 * 4;
	int b = (10 - 4) / 3;
	int c = 7 % 4;
	int d = 1 << 6;
	float f = 1.5 * 2.0;
	bool p = 3 < 4 && true;
	string s = "ab" + "cd";
	return a;
}`)
	if n == 0 {
		t.Fatal("no folds applied")
	}
	for _, want := range []string{"= 14;", "= 2;", "= 3;", "= 64;", "= 3.0;", "= true;", `= "abcd";`} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
}

func TestAlgebraicSimplification(t *testing.T) {
	out, _ := optimizeSource(t, `
func int f(int x) {
	int a = x + 0;
	int b = x * 1;
	int c = 0 + x;
	int d = x * 0;
	int e = x / 1;
	return a + b + c + d + e;
}`)
	for _, want := range []string{"int a = x;", "int b = x;", "int c = x;", "int d = 0;", "int e = x;"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMulZeroKeepsSideEffects(t *testing.T) {
	// x*0 with a call inside must NOT be dropped.
	out, _ := optimizeSource(t, `
func int g() {
	return 1;
}
func int main() {
	int a = g() * 0;
	return a;
}`)
	if !strings.Contains(out, "g() * 0") {
		t.Errorf("call folded away:\n%s", out)
	}
	// Division folding must not hide a trap.
	out2, _ := optimizeSource(t, `func int main() { int a = 1 / 0; return a; }`)
	if !strings.Contains(out2, "1 / 0") {
		t.Errorf("divide-by-zero folded:\n%s", out2)
	}
}

func TestBranchPruning(t *testing.T) {
	out, _ := optimizeSource(t, `
func int main() {
	int a = 0;
	if (true) {
		a = 1;
	} else {
		a = 2;
	}
	if (1 > 2) {
		a = 3;
	}
	while (false) {
		a = 4;
	}
	return a;
}`)
	if strings.Contains(out, "a = 2;") || strings.Contains(out, "a = 3;") || strings.Contains(out, "a = 4;") {
		t.Errorf("dead branches survive:\n%s", out)
	}
	if !strings.Contains(out, "a = 1;") {
		t.Errorf("live branch pruned:\n%s", out)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	out, _ := optimizeSource(t, `
func int main() {
	return 1;
	return 2;
}`)
	if strings.Contains(out, "return 2;") {
		t.Errorf("unreachable return survives:\n%s", out)
	}
}

// TestDeadCodeCountExact pins the rewrite count for dead-code removal:
// three statements after the return means exactly three rewrites, even
// though they are dropped as one truncation.
func TestDeadCodeCountExact(t *testing.T) {
	_, n := optimizeSource(t, `
func int main() {
	return 1;
	int a = 2;
	int b = 3;
	return a + b;
}`)
	if n != 3 {
		t.Errorf("rewrite count = %d, want 3 (one per dropped statement)", n)
	}

	// A lone return at the end of the block drops nothing and must not
	// inflate the count.
	_, n = optimizeSource(t, `
func int main() {
	int a = 4;
	return a;
}`)
	if n != 0 {
		t.Errorf("rewrite count = %d, want 0 for clean function", n)
	}
}

// TestOptimizeRunsDeclaredOrder pins the contract debugify depends on:
// the declared pass order (Passes) is exactly what Optimize executes —
// whole rounds of the declared sequence, nothing reordered, skipped, or
// injected.
func TestOptimizeRunsDeclaredOrder(t *testing.T) {
	declared := Passes()
	var names []string
	seen := map[string]bool{}
	for _, p := range declared {
		if p.Name == "" {
			t.Fatal("declared pass with empty name")
		}
		if seen[p.Name] {
			t.Fatalf("pass %q declared twice", p.Name)
		}
		seen[p.Name] = true
		names = append(names, p.Name)
	}

	f, err := Parse("order.c", `
func int main() {
	int a = 2 + 3;
	if (1 > 2) {
		a = 0;
	}
	int b = a * 1;
	return a + b;
	int dead = 9;
}`)
	if err != nil {
		t.Fatal(err)
	}
	n, trace := OptimizeTraced(f)
	if n == 0 {
		t.Fatal("optimizer applied no rewrites to a clearly optimisable program")
	}
	if len(trace) == 0 || len(trace)%len(declared) != 0 {
		t.Fatalf("trace length %d is not a whole number of declared rounds (%d passes)",
			len(trace), len(declared))
	}
	for i, got := range trace {
		if want := names[i%len(names)]; got != want {
			t.Fatalf("pass %d: Optimize ran %q, declared order says %q (trace %v)",
				i, got, want, trace)
		}
	}
	if len(trace) < 2*len(declared) {
		t.Fatalf("expected at least two rounds (work round + clean round), got trace %v", trace)
	}
}

// TestPassByName resolves every declared pass and rejects unknown names.
func TestPassByName(t *testing.T) {
	for _, p := range Passes() {
		got, ok := PassByName(p.Name)
		if !ok || got.Name != p.Name {
			t.Fatalf("PassByName(%q) = (%v, %v)", p.Name, got.Name, ok)
		}
	}
	if _, ok := PassByName("no-such-pass"); ok {
		t.Fatal("PassByName accepted an unknown pass")
	}
}

// TestPassesAreIndependent checks each pass only performs its own
// rewrite family: fold-constants alone must not prune branches, and
// prune-branches alone must not fold.
func TestPassesAreIndependent(t *testing.T) {
	src := `
func int main() {
	int a = 2 + 3;
	if (false) {
		a = 7;
	}
	return a;
}`
	fold := func(t *testing.T, name string) string {
		f, err := Parse("ind.c", src)
		if err != nil {
			t.Fatal(err)
		}
		p, ok := PassByName(name)
		if !ok {
			t.Fatalf("no pass %q", name)
		}
		p.Run(f)
		return Print(f)
	}
	foldOut := fold(t, "fold-constants")
	if !strings.Contains(foldOut, "= 5;") {
		t.Errorf("fold-constants did not fold 2+3:\n%s", foldOut)
	}
	if !strings.Contains(foldOut, "a = 7;") {
		t.Errorf("fold-constants pruned a branch:\n%s", foldOut)
	}
	pruneOut := fold(t, "prune-branches")
	if strings.Contains(pruneOut, "a = 7;") {
		t.Errorf("prune-branches left the constant-false branch:\n%s", pruneOut)
	}
	if !strings.Contains(pruneOut, "2 + 3") {
		t.Errorf("prune-branches folded constants:\n%s", pruneOut)
	}
}

func TestCompileOptimizedRuns(t *testing.T) {
	prog, folds, err := CompileOptimized("opt.c", `
func int main() {
	int unrolled = 3 * 3 * 3 * 3;
	if (2 > 1) {
		unrolled += 0 + 19;
	}
	printf("%d\n", unrolled);
	return 0;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if folds == 0 {
		t.Error("no folds recorded")
	}
	var sb strings.Builder
	vm := NewVM(prog, &sb)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "100\n" {
		t.Errorf("output = %q, want 100", sb.String())
	}
}

// TestOptimizerPreservesSemantics is the optimiser's property test: for
// random integer expression trees, the optimised program computes the same
// value as the unoptimised one.
func TestOptimizerPreservesSemantics(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genExpr(r, 5)
		src := "func int main() { int result = " + exprString(tree) + "; return result; }"

		run := func(optimize bool) (int64, bool) {
			var prog *Program
			var err error
			if optimize {
				prog, _, err = CompileOptimized("p.c", src, nil)
			} else {
				prog, err = Compile("p.c", src, nil)
			}
			if err != nil {
				return 0, false
			}
			vm := NewVM(prog, nil)
			if err := vm.Run(); err != nil {
				return 0, false
			}
			return vm.Threads()[0].Result.I, true
		}
		plain, okPlain := run(false)
		opt, okOpt := run(true)
		if okPlain != okOpt {
			// A run-time trap (div by zero) must be preserved, not folded
			// away or introduced.
			t.Logf("seed %d: trap behaviour diverged (plain ok=%v, opt ok=%v)\nsrc: %s",
				seed, okPlain, okOpt, src)
			return false
		}
		if okPlain && plain != opt {
			t.Logf("seed %d: plain %d != optimised %d\nsrc: %s", seed, plain, opt, src)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDisassembler(t *testing.T) {
	prog, err := Compile("d.c", `
global int g = 5;
struct pt {
	int x;
}
func int helper(int a) {
	return a + g;
}
func int main() {
	int[] arr = new int[4];
	pt* p = new pt;
	parallel_for (int i = 0; i < 4; i++) {
		atomic_add(&arr[i], i);
	}
	return helper(arr[0]) + p->x;
}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis := NewDisassembler(prog)
	out := dis.Func("main")
	for _, want := range []string{"main:", "newarr", "newstruct", " pt", "parfor", "call", "helper", "; line"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	helperOut := dis.Func("helper")
	if !strings.Contains(helperOut, "loadg") || !strings.Contains(helperOut, " g") {
		t.Errorf("helper disassembly:\n%s", helperOut)
	}
	if out := dis.Func("nosuch"); !strings.Contains(out, "no function") {
		t.Errorf("missing-function disassembly: %q", out)
	}
}
