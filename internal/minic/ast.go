package minic

// This file defines the abstract syntax tree for mini-C. The tree is
// produced by the parser, annotated in place by the checker (types, symbol
// resolution, local slot numbers) and consumed by the bytecode compiler and
// the printer.

// File is a parsed mini-C translation unit.
type File struct {
	Name    string // source file name (appears in debug info)
	Structs []*StructDef
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl declares one global variable, optionally initialised with a
// constant expression (literals, and array literals of literals).
type GlobalDecl struct {
	Name string
	Type *Type
	Init Expr // may be nil
	Line int

	Index int // assigned by the checker: index into Program.Globals
}

// FuncDecl declares one function.
type FuncDecl struct {
	Name   string
	Params []Param
	Result *Type
	Body   *BlockStmt
	Line   int

	// Filled in by the checker.
	Index     int      // index into Program.Funcs
	NumSlots  int      // total local slots including params
	SlotNames []string // slot -> variable name (debug info)
	SlotTypes []*Type  // slot -> declared type
}

// Param is one function parameter.
type Param struct {
	Name string
	Type *Type
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	Pos() int // 1-based source line
}

type stmtBase struct{ Line int }

func (s stmtBase) stmtNode() {}
func (s stmtBase) Pos() int  { return s.Line }

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	stmtBase
	Stmts []Stmt
}

// VarDeclStmt declares a local variable with an optional initialiser.
type VarDeclStmt struct {
	stmtBase
	Name string
	Type *Type
	Init Expr // may be nil

	Slot int // assigned by checker
}

// AssignStmt is `lhs = rhs;`, `lhs += rhs;` or `lhs -= rhs;`.
type AssignStmt struct {
	stmtBase
	Op  Kind // Assign, PlusAssign, MinusAssign
	LHS Expr // must be addressable
	RHS Expr
}

// IncDecStmt is `lhs++;` or `lhs--;`.
type IncDecStmt struct {
	stmtBase
	Op  Kind // Inc or Dec
	LHS Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is `if (cond) then [else else]`.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is `while (cond) body`.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body *BlockStmt
}

// ForStmt is the C-style `for (init; cond; post) body` where init is a
// declaration or assignment, and post is an assignment or inc/dec.
type ForStmt struct {
	stmtBase
	Init Stmt // may be nil; VarDeclStmt or AssignStmt
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil; AssignStmt or IncDecStmt
	Body *BlockStmt
}

// ParallelForStmt is `parallel_for (int i = lo; i < hi; i++) body`.
// The runtime splits the iteration space across the VM's logical threads.
// The loop variable iterates from Lo (inclusive) to Hi (exclusive).
type ParallelForStmt struct {
	stmtBase
	Var  string
	Lo   Expr
	Hi   Expr
	Body *BlockStmt

	// Filled in by the checker/compiler: the hidden function compiled from
	// the body, plus the captured enclosing locals passed by reference.
	HelperIndex  int      // index into Program.Funcs of the compiled body
	CapturedVars []string // names of captured enclosing locals
	capturedSlot []int    // matching slots in the enclosing function
	Slot         int      // slot of the loop variable inside the helper
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt is `break;`.
type BreakStmt struct{ stmtBase }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ stmtBase }

// ---- Expressions ----

// Expr is implemented by all expression nodes. After checking, Type()
// returns the expression's static type.
type Expr interface {
	exprNode()
	Pos() int
	Type() *Type
}

type exprBase struct {
	Line int
	typ  *Type
}

func (e exprBase) exprNode()   {}
func (e exprBase) Pos() int    { return e.Line }
func (e exprBase) Type() *Type { return e.typ }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Value float64
}

// BoolLit is `true` or `false`.
type BoolLit struct {
	exprBase
	Value bool
}

// StringLit is a string literal.
type StringLit struct {
	exprBase
	Value string
}

// NullLit is `null`.
type NullLit struct{ exprBase }

// Ident is a reference to a local, parameter, global, or function.
type Ident struct {
	exprBase
	Name string

	// Resolution results (checker).
	IsGlobal    bool
	Slot        int // local slot when !IsGlobal and !IsFunc
	GlobalIndex int // when IsGlobal
	IsFunc      bool
	FuncIndex   int
}

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	exprBase
	Op   Kind
	X, Y Expr
}

// UnaryExpr is `-x`, `!x`, `&x` (address-of) or `*x` (dereference).
type UnaryExpr struct {
	exprBase
	Op Kind // Minus, Not, Amp, Star
	X  Expr
}

// IndexExpr is `arr[i]`.
type IndexExpr struct {
	exprBase
	X     Expr
	Index Expr
}

// FieldExpr is `x.f` or `p->f`.
type FieldExpr struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool

	FieldIndex int // assigned by checker
}

// CallExpr is `f(args...)`. Callee must be a plain identifier naming a
// declared function or a registered builtin.
type CallExpr struct {
	exprBase
	Callee string
	Args   []Expr
	Line2  int

	IsBuiltin    bool
	BuiltinIndex int
	FuncIndex    int
}

// NewExpr is `new T` (struct allocation) or `new T[n]` (array allocation,
// zero-initialised).
type NewExpr struct {
	exprBase
	ElemType *Type
	Count    Expr // nil for single struct allocation
}

// CastExpr is `int(x)` / `float(x)` style conversion between numeric types
// (and int<->bool where needed by generated code).
type CastExpr struct {
	exprBase
	Target *Type
	X      Expr
}
