package minic

import "fmt"

// This file implements the mini-C optimiser: AST-level constant folding
// and algebraic simplification, plus branch pruning for statically-known
// conditions. DSL compilers emit very regular code (BuildIt unrolls whole
// loops into constant expressions), so folding is worthwhile — and it
// exercises the property the D2X design depends on: optimisation changes
// *code*, not the line attribution, because folding happens within a
// statement and pruning keeps surviving statements' lines intact.
//
// The optimiser is organised as a declared sequence of passes (Passes).
// Each pass is one rewrite family run as its own traversal, so tooling —
// the debugify preservation analysis in particular — can run passes one
// at a time and verify the debug-info invariants after each. Optimize
// itself iterates the declared order to a fixpoint.

// Pass is one optimiser rewrite family. Passes run independently: each
// Run is a full traversal applying only that family's rewrites.
type Pass struct {
	Name string // stable slug, e.g. "fold-constants"
	Desc string
	cfg  passConfig
}

// passConfig selects which rewrite families a traversal applies.
type passConfig struct {
	fold             bool // literal constant folding (binary, unary, cast)
	simplify         bool // algebraic identities and short-circuiting
	pruneBranches    bool // drop if/while arms with constant conditions
	pruneUnreachable bool // drop statements after an unconditional return
}

// Passes returns the optimiser's passes in their declared execution
// order. Optimize runs exactly this sequence (repeated to a fixpoint);
// TestOptimizeRunsDeclaredOrder asserts the two never drift apart.
func Passes() []Pass {
	return []Pass{
		{Name: "fold-constants", Desc: "evaluate literal-operand expressions at compile time",
			cfg: passConfig{fold: true}},
		{Name: "simplify-algebraic", Desc: "apply integer identities (x+0, x*1, x*0) and boolean short-circuits",
			cfg: passConfig{simplify: true}},
		{Name: "prune-branches", Desc: "drop if/while arms whose condition is a constant",
			cfg: passConfig{pruneBranches: true}},
		{Name: "prune-unreachable", Desc: "drop statements after an unconditional return",
			cfg: passConfig{pruneUnreachable: true}},
	}
}

// PassByName returns the declared pass with the given name.
func PassByName(name string) (Pass, bool) {
	for _, p := range Passes() {
		if p.Name == name {
			return p, true
		}
	}
	return Pass{}, false
}

// Run applies the pass to the file in place and returns the number of
// rewrites performed.
func (p Pass) Run(f *File) int { return p.RunTraced(f, nil) }

// RunTraced is Run with a RemapSet attached: any intentional line
// re-attribution the pass performs is declared into rm, the escape
// hatch the debugify analysis consults before flagging a moved
// location. The current passes rewrite strictly in place and declare
// nothing; a pass that merges or re-homes statements must declare each
// (from, to) line pair here or fail verification.
func (p Pass) RunTraced(f *File, rm *RemapSet) int {
	o := &optimizer{cfg: p.cfg, remaps: rm}
	for _, fd := range f.Funcs {
		fd.Body = o.block(fd.Body)
	}
	for _, g := range f.Globals {
		if g.Init != nil {
			g.Init = o.expr(g.Init)
		}
	}
	return o.count
}

// RemapSet records the line re-attributions a pass declares as
// intentional: "the location formerly on `from` now belongs to `to`".
// Debug-info preservation tooling treats undeclared re-attributions as
// bugs (the D2X tables would silently detach from the code they
// describe) and declared ones as policy.
type RemapSet struct {
	m map[[2]int]bool
}

// Declare records one intentional re-attribution from one line to
// another.
func (r *RemapSet) Declare(from, to int) {
	if r == nil {
		return
	}
	if r.m == nil {
		r.m = make(map[[2]int]bool)
	}
	r.m[[2]int{from, to}] = true
}

// Declared reports whether the (from, to) re-attribution was declared.
func (r *RemapSet) Declared(from, to int) bool {
	return r != nil && r.m[[2]int{from, to}]
}

// Len returns the number of declared remaps.
func (r *RemapSet) Len() int {
	if r == nil {
		return 0
	}
	return len(r.m)
}

// maxOptimizeRounds bounds the Optimize fixpoint loop. Every rewrite
// strictly shrinks the tree, so the bound is never reached in practice;
// it exists so a buggy future pass cannot hang the compiler.
const maxOptimizeRounds = 20

// Optimize rewrites the file in place, folding constants and pruning dead
// branches. It must run after Parse and before Check (it does not maintain
// resolution annotations). It returns the number of rewrites applied.
//
// Optimize runs the declared pass sequence (Passes) in order, repeating
// the whole sequence until a full round applies no rewrite, so a
// simplification in a late pass still feeds folding opportunities in an
// earlier one.
func Optimize(f *File) int {
	n, _ := OptimizeTraced(f)
	return n
}

// OptimizeTraced is Optimize returning also the names of the passes it
// ran, in execution order — the witness the pass-order unit test checks
// against the declared order.
func OptimizeTraced(f *File) (int, []string) {
	total := 0
	var trace []string
	for round := 0; round < maxOptimizeRounds; round++ {
		roundN := 0
		for _, p := range Passes() {
			roundN += p.Run(f)
			trace = append(trace, p.Name)
		}
		total += roundN
		if roundN == 0 {
			break
		}
	}
	return total, trace
}

type optimizer struct {
	count  int
	cfg    passConfig
	remaps *RemapSet
}

func (o *optimizer) block(b *BlockStmt) *BlockStmt {
	var out []Stmt
	for i, s := range b.Stmts {
		s = o.stmt(s)
		if s == nil {
			continue
		}
		out = append(out, s)
		// Statements after an unconditional return are unreachable:
		// count one rewrite per statement actually dropped.
		if _, isRet := s.(*ReturnStmt); isRet && o.cfg.pruneUnreachable {
			o.count += len(b.Stmts) - i - 1
			break
		}
	}
	b.Stmts = out
	return b
}

// stmt rewrites one statement; returning nil drops it.
func (o *optimizer) stmt(s Stmt) Stmt {
	switch st := s.(type) {
	case *BlockStmt:
		return o.block(st)
	case *VarDeclStmt:
		if st.Init != nil {
			st.Init = o.expr(st.Init)
		}
	case *AssignStmt:
		st.LHS = o.expr(st.LHS)
		st.RHS = o.expr(st.RHS)
	case *IncDecStmt:
		st.LHS = o.expr(st.LHS)
	case *ExprStmt:
		st.X = o.expr(st.X)
	case *IfStmt:
		st.Cond = o.expr(st.Cond)
		st.Then = o.block(st.Then)
		if st.Else != nil {
			st.Else = o.stmt(st.Else)
		}
		if lit, ok := st.Cond.(*BoolLit); ok && o.cfg.pruneBranches {
			o.count++
			if lit.Value {
				return st.Then
			}
			if st.Else == nil {
				return nil
			}
			return st.Else
		}
	case *WhileStmt:
		st.Cond = o.expr(st.Cond)
		st.Body = o.block(st.Body)
		if lit, ok := st.Cond.(*BoolLit); ok && !lit.Value && o.cfg.pruneBranches {
			o.count++
			return nil
		}
	case *ForStmt:
		if st.Init != nil {
			st.Init = o.stmt(st.Init)
		}
		if st.Cond != nil {
			st.Cond = o.expr(st.Cond)
		}
		if st.Post != nil {
			st.Post = o.stmt(st.Post)
		}
		st.Body = o.block(st.Body)
	case *ParallelForStmt:
		st.Lo = o.expr(st.Lo)
		st.Hi = o.expr(st.Hi)
		st.Body = o.block(st.Body)
	case *ReturnStmt:
		if st.X != nil {
			st.X = o.expr(st.X)
		}
	}
	return s
}

func (o *optimizer) expr(e Expr) Expr {
	switch x := e.(type) {
	case *BinaryExpr:
		x.X = o.expr(x.X)
		x.Y = o.expr(x.Y)
		if o.cfg.fold {
			if folded := foldBinary(x); folded != nil {
				o.count++
				return folded
			}
		}
		if o.cfg.simplify {
			if simplified := simplifyAlgebraic(x); simplified != nil {
				o.count++
				return simplified
			}
		}
	case *UnaryExpr:
		x.X = o.expr(x.X)
		if o.cfg.fold {
			if folded := foldUnary(x); folded != nil {
				o.count++
				return folded
			}
		}
	case *IndexExpr:
		x.X = o.expr(x.X)
		x.Index = o.expr(x.Index)
	case *FieldExpr:
		x.X = o.expr(x.X)
	case *CallExpr:
		for i := range x.Args {
			x.Args[i] = o.expr(x.Args[i])
		}
	case *NewExpr:
		if x.Count != nil {
			x.Count = o.expr(x.Count)
		}
	case *CastExpr:
		x.X = o.expr(x.X)
		if o.cfg.fold {
			if folded := foldCast(x); folded != nil {
				o.count++
				return folded
			}
		}
	}
	return e
}

// foldBinary evaluates constant operands at compile time. Division and
// modulo by a constant zero are left alone: the fault must happen at run
// time, where the debugger can catch it.
func foldBinary(x *BinaryExpr) Expr {
	li, liOK := x.X.(*IntLit)
	ri, riOK := x.Y.(*IntLit)
	if liOK && riOK {
		a, c := li.Value, ri.Value
		mk := func(v int64) Expr { return &IntLit{exprBase: exprBase{Line: x.Line}, Value: v} }
		mkb := func(v bool) Expr { return &BoolLit{exprBase: exprBase{Line: x.Line}, Value: v} }
		switch x.Op {
		case Plus:
			return mk(a + c)
		case Minus:
			return mk(a - c)
		case Star:
			return mk(a * c)
		case Slash:
			if c != 0 {
				return mk(a / c)
			}
		case Percent:
			if c != 0 {
				return mk(a % c)
			}
		case Shl:
			if c >= 0 && c <= 63 {
				return mk(a << uint(c))
			}
		case Shr:
			if c >= 0 && c <= 63 {
				return mk(a >> uint(c))
			}
		case Eq:
			return mkb(a == c)
		case Neq:
			return mkb(a != c)
		case Lt:
			return mkb(a < c)
		case Le:
			return mkb(a <= c)
		case Gt:
			return mkb(a > c)
		case Ge:
			return mkb(a >= c)
		}
		return nil
	}
	lf, lfOK := x.X.(*FloatLit)
	rf, rfOK := x.Y.(*FloatLit)
	if lfOK && rfOK {
		a, c := lf.Value, rf.Value
		mk := func(v float64) Expr { return &FloatLit{exprBase: exprBase{Line: x.Line}, Value: v} }
		switch x.Op {
		case Plus:
			return mk(a + c)
		case Minus:
			return mk(a - c)
		case Star:
			return mk(a * c)
		case Slash:
			if c != 0 {
				return mk(a / c)
			}
		}
		return nil
	}
	lb, lbOK := x.X.(*BoolLit)
	rb, rbOK := x.Y.(*BoolLit)
	if lbOK && rbOK {
		mkb := func(v bool) Expr { return &BoolLit{exprBase: exprBase{Line: x.Line}, Value: v} }
		switch x.Op {
		case AndAnd:
			return mkb(lb.Value && rb.Value)
		case OrOr:
			return mkb(lb.Value || rb.Value)
		case Eq:
			return mkb(lb.Value == rb.Value)
		case Neq:
			return mkb(lb.Value != rb.Value)
		}
		return nil
	}
	ls, lsOK := x.X.(*StringLit)
	rs, rsOK := x.Y.(*StringLit)
	if lsOK && rsOK && x.Op == Plus {
		return &StringLit{exprBase: exprBase{Line: x.Line}, Value: ls.Value + rs.Value}
	}
	// Short-circuit with one constant bool side.
	if lbOK {
		if x.Op == AndAnd {
			if lb.Value {
				return x.Y
			}
			return &BoolLit{exprBase: exprBase{Line: x.Line}, Value: false}
		}
		if x.Op == OrOr {
			if lb.Value {
				return &BoolLit{exprBase: exprBase{Line: x.Line}, Value: true}
			}
			return x.Y
		}
	}
	return nil
}

// simplifyAlgebraic applies identity rules: x+0, x-0, x*1, x*0, x/1, 0+x,
// 1*x. Only integer identities; float zero/one have sign and NaN caveats
// (0*NaN != 0), so floats are left to foldBinary's literal-only cases.
func simplifyAlgebraic(x *BinaryExpr) Expr {
	intVal := func(e Expr) (int64, bool) {
		l, ok := e.(*IntLit)
		if !ok {
			return 0, false
		}
		return l.Value, true
	}
	if v, ok := intVal(x.Y); ok {
		switch {
		case x.Op == Plus && v == 0, x.Op == Minus && v == 0, x.Op == Star && v == 1, x.Op == Slash && v == 1:
			return x.X
		case x.Op == Star && v == 0 && sideEffectFree(x.X):
			return &IntLit{exprBase: exprBase{Line: x.Line}, Value: 0}
		}
	}
	if v, ok := intVal(x.X); ok {
		switch {
		case x.Op == Plus && v == 0, x.Op == Star && v == 1:
			return x.Y
		case x.Op == Star && v == 0 && sideEffectFree(x.Y):
			return &IntLit{exprBase: exprBase{Line: x.Line}, Value: 0}
		}
	}
	return nil
}

// sideEffectFree reports whether evaluating e can have no observable
// effect (no calls, no allocation; index/deref can fault, so they count
// as effects here).
func sideEffectFree(e Expr) bool {
	switch x := e.(type) {
	case *IntLit, *FloatLit, *BoolLit, *StringLit, *NullLit, *Ident:
		return true
	case *BinaryExpr:
		if x.Op == Slash || x.Op == Percent {
			return false // can trap
		}
		return sideEffectFree(x.X) && sideEffectFree(x.Y)
	case *UnaryExpr:
		return x.Op != Star && sideEffectFree(x.X)
	}
	return false
}

func foldUnary(x *UnaryExpr) Expr {
	switch x.Op {
	case Minus:
		if l, ok := x.X.(*IntLit); ok {
			return &IntLit{exprBase: exprBase{Line: x.Line}, Value: -l.Value}
		}
		if l, ok := x.X.(*FloatLit); ok {
			return &FloatLit{exprBase: exprBase{Line: x.Line}, Value: -l.Value}
		}
	case Not:
		if l, ok := x.X.(*BoolLit); ok {
			return &BoolLit{exprBase: exprBase{Line: x.Line}, Value: !l.Value}
		}
	}
	return nil
}

func foldCast(x *CastExpr) Expr {
	switch x.Target.Kind {
	case TInt:
		if l, ok := x.X.(*FloatLit); ok {
			return &IntLit{exprBase: exprBase{Line: x.Line}, Value: int64(l.Value)}
		}
		if l, ok := x.X.(*IntLit); ok {
			return l
		}
	case TFloat:
		if l, ok := x.X.(*IntLit); ok {
			return &FloatLit{exprBase: exprBase{Line: x.Line}, Value: float64(l.Value)}
		}
	}
	return nil
}

// CompileOptimized is Compile with the optimiser inserted between parsing
// and checking.
func CompileOptimized(filename, src string, natives *Natives) (*Program, int, error) {
	if natives == nil {
		natives = NewNatives()
	}
	file, err := Parse(filename, src)
	if err != nil {
		return nil, 0, err
	}
	n := Optimize(file)
	prog, err := Check(file, natives)
	if err != nil {
		return nil, n, fmt.Errorf("minic: after optimisation: %w", err)
	}
	if err := CompileCode(prog); err != nil {
		return nil, n, err
	}
	prog.SourceText = src
	return prog, n, nil
}
