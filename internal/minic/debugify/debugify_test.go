package debugify

import (
	"strings"
	"testing"

	"d2x/internal/minic"
)

// mustModule parses and instruments a source text.
func mustModule(t *testing.T, src string) *Module {
	t.Helper()
	f, err := minic.Parse("dbg.c", src)
	if err != nil {
		t.Fatal(err)
	}
	m := Instrument(f, nil)
	if m.varNote != "" {
		t.Fatalf("baseline variable check unavailable: %s", m.varNote)
	}
	return m
}

// TestDeclaredPassesPreserveDebugInfo is the production property this
// package exists to enforce: every declared optimiser pass, run over a
// representative program it actually rewrites, preserves all synthetic
// locations and never widens a variable set.
func TestDeclaredPassesPreserveDebugInfo(t *testing.T) {
	programs := map[string]string{
		"folding-and-pruning": `
global int g = 42;
struct pt {
	int x;
}
func int helper(int a) {
	return a + g;
}
func int main() {
	int a = 2 + 3 * 4;
	if (a > 100) {
		a = 0;
	} else {
		a = a * 1;
	}
	int i = 0;
	while (i < 3) {
		i++;
	}
	for (int j = 0; j < 2; j++) {
		a += j + 0;
	}
	if (false) {
		int dead = 1;
	}
	pt* p = new pt;
	return helper(a) + p->x;
	int unreachable = 7;
}`,
		"parallel-and-arrays": `
func int main() {
	int[] arr = new int[4];
	parallel_for (int k = 0; k < 4; k++) {
		atomic_add(&arr[k], k * 1);
	}
	int cond = 1;
	if (2 > 1) {
		cond = arr[0] + 0;
	}
	while (false) {
		cond = 9;
	}
	return cond;
}`,
		"casts-and-strings": `
func void show(string s) {
	printf("%s\n", s);
}
func int main() {
	float f = float(2) * 1.5;
	int n = int(f) + (8 / 2);
	show("a" + "b");
	bool p = true && n > 0;
	if (p) {
		n -= 0;
	}
	return n;
}`,
	}
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			rep, err := Run("dbg.c", src, nil)
			if err != nil {
				t.Fatal(err)
			}
			if note := rep.VarCheckNote; note != "" {
				t.Fatalf("variable check disabled: %s", note)
			}
			total := 0
			for _, pr := range rep.Passes {
				total += pr.Rewrites
				if pr.LocsAfter > pr.LocsBefore {
					t.Errorf("pass %s grew the location population %d -> %d",
						pr.Pass, pr.LocsBefore, pr.LocsAfter)
				}
				if pr.VarsAfter > pr.VarsBefore {
					t.Errorf("pass %s widened total variable slots %d -> %d",
						pr.Pass, pr.VarsBefore, pr.VarsAfter)
				}
			}
			if total == 0 {
				t.Fatal("no pass rewrote a clearly optimisable program; the run proves nothing")
			}
			if !rep.Clean() {
				for _, f := range rep.Findings() {
					t.Errorf("finding: %s", f)
				}
			}
			if len(rep.Passes) != len(minic.Passes()) {
				t.Errorf("report covers %d passes, declared %d", len(rep.Passes), len(minic.Passes()))
			}
		})
	}
}

const twoDeclSrc = `
func int main() {
	int a = 1 + 2;
	int b = 3;
	return b;
}`

// mainBody digs out main's body from the instrumented module.
func mainBody(t *testing.T, f *minic.File) *minic.BlockStmt {
	t.Helper()
	for _, fd := range f.Funcs {
		if fd.Name == "main" {
			return fd.Body
		}
	}
	t.Fatal("no main")
	return nil
}

func kinds(rep PassReport) map[FindingKind]int {
	out := map[FindingKind]int{}
	for _, f := range rep.Findings {
		out[f.Kind]++
	}
	return out
}

// TestCatchesLocationDropper: a pass that zeroes a statement's location
// must be reported as loc-missing.
func TestCatchesLocationDropper(t *testing.T) {
	m := mustModule(t, twoDeclSrc)
	rep := m.RunPass("evil-drop", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		body.Stmts[0].(*minic.VarDeclStmt).Line = 0
		return 1
	})
	if k := kinds(rep); k[FindingLocMissing] == 0 {
		t.Fatalf("loc dropper not caught: %v", rep.Findings)
	}
}

// TestCatchesInventedLocation: a pass that stamps a node with a line
// number that was never assigned must be reported as loc-invented.
func TestCatchesInventedLocation(t *testing.T) {
	m := mustModule(t, twoDeclSrc)
	rep := m.RunPass("evil-invent", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		body.Stmts[0].(*minic.VarDeclStmt).Init.(*minic.BinaryExpr).Line = 99999
		return 1
	})
	if k := kinds(rep); k[FindingLocInvented] == 0 {
		t.Fatalf("invented location not caught: %v", rep.Findings)
	}
}

// reHome merges the first declaration's initialiser into the second
// declaration and deletes the first — the canonical statement-merging
// rewrite that re-attributes an expression to another line. declare
// controls whether the pass declares the remap.
func reHome(t *testing.T, declare bool) PassReport {
	t.Helper()
	m := mustModule(t, twoDeclSrc)
	return m.RunPass("merge-decls", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		a := body.Stmts[0].(*minic.VarDeclStmt)
		b := body.Stmts[1].(*minic.VarDeclStmt)
		b.Init = a.Init
		body.Stmts = body.Stmts[1:]
		if declare {
			rm.Declare(a.Pos(), b.Pos())
		}
		return 1
	})
}

// TestCatchesUndeclaredReattribution: the merge without a declared remap
// is a bug; with the declared remap it is policy.
func TestCatchesUndeclaredReattribution(t *testing.T) {
	rep := reHome(t, false)
	k := kinds(rep)
	if k[FindingLocReattributed] == 0 {
		t.Fatalf("undeclared re-attribution not caught: %v", rep.Findings)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == FindingLocReattributed && strings.Contains(f.Detail, "without a declared remap") {
			found = true
		}
	}
	if !found {
		t.Errorf("finding lacks remap hint: %v", rep.Findings)
	}
}

func TestDeclaredRemapIsAccepted(t *testing.T) {
	rep := reHome(t, true)
	if !rep.Clean() {
		t.Fatalf("declared remap still flagged: %v", rep.Findings)
	}
}

// TestCatchesDuplicatedStatementLocation: cloning a statement duplicates
// its location, detaching "one line, one statement".
func TestCatchesDuplicatedStatementLocation(t *testing.T) {
	m := mustModule(t, twoDeclSrc)
	rep := m.RunPass("evil-clone", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		a := body.Stmts[0].(*minic.VarDeclStmt)
		b := body.Stmts[1].(*minic.VarDeclStmt)
		b.Line = a.Line
		return 1
	})
	if k := kinds(rep); k[FindingLocReattributed] == 0 {
		t.Fatalf("duplicated statement location not caught: %v", rep.Findings)
	}
}

// TestCatchesVariableWidener: a pass that renames an (unreferenced)
// local changes the variable set the debug tables would emit — the new
// name is a widening even though the slot count is unchanged.
func TestCatchesVariableWidener(t *testing.T) {
	m := mustModule(t, `
func int main() {
	int a = 1;
	int b = 2;
	return a;
}`)
	rep := m.RunPass("evil-rename", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		body.Stmts[1].(*minic.VarDeclStmt).Name = "zz"
		return 1
	})
	k := kinds(rep)
	if k[FindingVarWidened] == 0 {
		t.Fatalf("variable widening not caught: %v", rep.Findings)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Kind == FindingVarWidened && strings.Contains(f.Detail, `"zz"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("widening finding does not name the variable: %v", rep.Findings)
	}
}

// TestCatchesCheckBreakage: renaming a *referenced* variable leaves the
// module untypeable; debugify must degrade to a check-failed finding
// rather than crash or stay silent.
func TestCatchesCheckBreakage(t *testing.T) {
	m := mustModule(t, twoDeclSrc)
	rep := m.RunPass("evil-break", func(f *minic.File, rm *minic.RemapSet) int {
		body := mainBody(t, f)
		body.Stmts[1].(*minic.VarDeclStmt).Name = "zz"
		return 1
	})
	if k := kinds(rep); k[FindingCheckFailed] == 0 {
		t.Fatalf("check breakage not caught: %v", rep.Findings)
	}
	// A later pass on the broken module must not re-report or panic.
	rep2 := m.RunPass("noop", func(f *minic.File, rm *minic.RemapSet) int { return 0 })
	if k := kinds(rep2); k[FindingCheckFailed] != 0 {
		t.Fatalf("check-failed re-reported on subsequent pass: %v", rep2.Findings)
	}
}

// TestOrigLineRoundTrip: findings anchor back to original source lines.
func TestOrigLineRoundTrip(t *testing.T) {
	m := mustModule(t, twoDeclSrc)
	body := mainBody(t, m.file)
	a := body.Stmts[0].(*minic.VarDeclStmt)
	if got := m.OrigLine(a.Pos()); got != 3 {
		t.Fatalf("OrigLine(%d) = %d, want 3 (first decl of twoDeclSrc)", a.Pos(), got)
	}
}

// TestFindingKindStrings pins the stable slugs reports and CI grep for.
func TestFindingKindStrings(t *testing.T) {
	want := map[FindingKind]string{
		FindingLocMissing:      "loc-missing",
		FindingLocInvented:     "loc-invented",
		FindingLocReattributed: "loc-reattributed",
		FindingVarWidened:      "var-widened",
		FindingCheckFailed:     "check-failed",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
