// Package debugify is a per-pass debug-info preservation analysis for
// the mini-C optimiser, after LLVM's `debugify` utility and the
// methodology of "Who's Debugging the Debuggers?" (Di Luna et al.): the
// class of bug where an optimisation silently drops or mis-attributes
// debug metadata is endemic in production toolchains, and it is exactly
// the class that would detach D2X's tables from the code they describe —
// the D2X design leans entirely on "optimisation changes code, not line
// attribution".
//
// The analysis works on synthetic metadata so it needs no ground truth:
//
//  1. Instrument replaces every statement's and expression's source line
//     with a unique synthetic location id, remembering the original line,
//     each expression's owning statement, and (via the checker) each
//     function's variable set.
//  2. Each optimiser pass (minic.Passes) runs individually over the
//     instrumented module.
//  3. After every pass the module is re-scanned and verified:
//     (a) no surviving statement or expression lost its location
//     (a zero or unknown id — FindingLocMissing / FindingLocInvented);
//     (b) no location was re-attributed to a different original
//     statement unless the pass declared the remap through
//     minic.RemapSet — the explicit escape hatch for passes that
//     merge or re-home code (FindingLocReattributed);
//     (c) the per-function variable sets the debug tables would claim
//     were not widened — a pass may eliminate a variable, never
//     invent one (FindingVarWidened).
//
// The result is a typed per-pass Report. d2xverify exposes it as the
// opt/debugify-* checks; cmd/d2xfuzz runs it over every generated corpus
// program; d2xlint -debugify prints the per-pass preservation summary.
package debugify

import (
	"fmt"

	"d2x/internal/minic"
)

// FindingKind classifies one preservation violation.
type FindingKind int

const (
	// FindingLocMissing: a surviving statement or expression carries no
	// location (line <= 0).
	FindingLocMissing FindingKind = iota
	// FindingLocInvented: a surviving node carries a location id that was
	// never assigned — the pass fabricated a line number.
	FindingLocInvented
	// FindingLocReattributed: a surviving node carries a location that
	// belonged to different code before the pass ran, and the pass did
	// not declare the remap.
	FindingLocReattributed
	// FindingVarWidened: after the pass, a function's variable set
	// contains a name it did not contain before — the emitted debug
	// tables would claim a variable the original program never had.
	FindingVarWidened
	// FindingCheckFailed: the module no longer type-checks after the
	// pass, so its debug metadata cannot be validated at all.
	FindingCheckFailed
)

// String renders the kind as its stable slug.
func (k FindingKind) String() string {
	switch k {
	case FindingLocMissing:
		return "loc-missing"
	case FindingLocInvented:
		return "loc-invented"
	case FindingLocReattributed:
		return "loc-reattributed"
	case FindingVarWidened:
		return "var-widened"
	case FindingCheckFailed:
		return "check-failed"
	}
	return fmt.Sprintf("FindingKind(%d)", int(k))
}

// Finding is one preservation violation observed after one pass.
type Finding struct {
	Pass   string
	Kind   FindingKind
	Line   int // original source line of the affected location (0 if unknown)
	Detail string
}

// String renders the finding for diagnostics.
func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s: %s", f.Pass, f.Kind, f.Detail)
}

// PassReport is the preservation outcome of one pass.
type PassReport struct {
	Pass     string
	Rewrites int
	// Location population before/after the pass (statements +
	// expressions), the denominator of the preservation rate.
	LocsBefore, LocsAfter int
	// Total variable slots across functions before/after the pass.
	VarsBefore, VarsAfter int
	Findings              []Finding
}

// Clean reports whether the pass preserved everything it had to.
func (p *PassReport) Clean() bool { return len(p.Findings) == 0 }

// Report aggregates the per-pass outcomes of one debugify run.
type Report struct {
	Passes []PassReport
	// VarCheckNote is non-empty when the variable-widening check could
	// not run (the baseline module did not type-check, e.g. because the
	// caller supplied no native registry for linked functions); location
	// checks still ran.
	VarCheckNote string
}

// Clean reports whether every pass preserved its debug metadata.
func (r *Report) Clean() bool {
	for i := range r.Passes {
		if !r.Passes[i].Clean() {
			return false
		}
	}
	return true
}

// Findings returns every finding across all passes, in pass order.
func (r *Report) Findings() []Finding {
	var out []Finding
	for i := range r.Passes {
		out = append(out, r.Passes[i].Findings...)
	}
	return out
}

// PassFunc is one optimiser pass under test: it rewrites the file in
// place, declares any intentional re-attributions into rm, and returns
// its rewrite count. minic's declared passes are adapted via their
// RunTraced method; synthetic misbehaving passes in tests implement it
// directly.
type PassFunc func(f *minic.File, rm *minic.RemapSet) int

// Module is an instrumented mini-C translation unit: every statement and
// expression carries a unique synthetic location id, and the module
// remembers enough pre-pass state to verify preservation after each
// pass. A Module is single-use — drive passes over it in order.
type Module struct {
	file *minic.File
	nats *minic.Natives

	origLine map[int]int  // id -> original source line
	stmtIDs  map[int]bool // ids assigned to statements (and global pseudo-statements)
	exprIDs  map[int]bool // ids assigned to expressions
	globalID []int        // global index -> pseudo owner id

	// Rolling pre-pass snapshot, updated after each verified pass.
	prevStmts map[int]bool
	prevOwner map[int]int
	prevVars  map[string]map[string]bool
	varsOK    bool
	varNote   string

	nextID int
}

// Instrument numbers every statement and expression of f with a unique
// synthetic location id and snapshots the baseline variable sets. The
// file is mutated in place; parse a dedicated copy. nats is the native
// registry the module's calls resolve against (nil for builtin-only
// sources); without the right registry the variable check is skipped.
func Instrument(f *minic.File, nats *minic.Natives) *Module {
	if nats == nil {
		nats = minic.NewNatives()
	}
	m := &Module{
		file:     f,
		nats:     nats,
		origLine: map[int]int{},
		stmtIDs:  map[int]bool{},
		exprIDs:  map[int]bool{},
		nextID:   1,
	}
	for _, g := range f.Globals {
		id := m.newID(g.Line)
		m.stmtIDs[id] = true
		m.globalID = append(m.globalID, id)
		m.instrumentExpr(g.Init)
	}
	for _, fd := range f.Funcs {
		minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
			id := m.newID(s.Pos())
			m.stmtIDs[id] = true
			setStmtLine(s, id)
			minic.StmtExprs(s, func(e minic.Expr) {
				m.instrumentExpr(e)
			})
			return true
		})
	}
	st := m.scan()
	m.prevStmts, m.prevOwner = st.stmts, st.owner
	if vars, err := m.checkVars(); err != nil {
		m.varsOK = false
		m.varNote = fmt.Sprintf("variable check disabled: baseline module does not type-check: %v", err)
	} else {
		m.varsOK = true
		m.prevVars = vars
	}
	return m
}

func (m *Module) newID(origLine int) int {
	id := m.nextID
	m.nextID++
	m.origLine[id] = origLine
	return id
}

func (m *Module) instrumentExpr(root minic.Expr) {
	minic.InspectExpr(root, func(e minic.Expr) {
		id := m.newID(e.Pos())
		m.exprIDs[id] = true
		setExprLine(e, id)
	})
}

// OrigLine maps a synthetic id back to its original source line.
func (m *Module) OrigLine(id int) int { return m.origLine[id] }

// RunPass runs one pass over the instrumented module and verifies the
// preservation invariants against the pre-pass state.
func (m *Module) RunPass(name string, fn PassFunc) PassReport {
	before := m.scan()
	rm := &minic.RemapSet{}
	rewrites := fn(m.file, rm)
	after := m.scan()

	rep := PassReport{
		Pass:       name,
		Rewrites:   rewrites,
		LocsBefore: len(before.stmts) + len(before.owner),
		LocsAfter:  len(after.stmts) + len(after.owner),
	}
	m.verifyLocations(&rep, before, after, rm)
	m.verifyVars(&rep)

	// The verified post-state becomes the next pass's pre-state.
	m.prevStmts, m.prevOwner = after.stmts, after.owner
	return rep
}

// RunDeclaredPasses drives every declared optimiser pass in order,
// exactly as Optimize would execute one round, and returns the
// per-pass preservation report.
func (m *Module) RunDeclaredPasses() *Report {
	rep := &Report{VarCheckNote: m.varNote}
	for _, p := range minic.Passes() {
		pass := p // capture
		rep.Passes = append(rep.Passes, m.RunPass(pass.Name, func(f *minic.File, rm *minic.RemapSet) int {
			return pass.RunTraced(f, rm)
		}))
	}
	return rep
}

// Run parses source, instruments it, and drives every declared
// optimiser pass, returning the preservation report. nats is the native
// registry of the build that produced the source (nil for builtin-only
// sources).
func Run(filename, source string, nats *minic.Natives) (*Report, error) {
	f, err := minic.Parse(filename, source)
	if err != nil {
		return nil, fmt.Errorf("debugify: %w", err)
	}
	return Instrument(f, nats).RunDeclaredPasses(), nil
}

// scanState is one snapshot of the module's location population.
type scanState struct {
	stmts    map[int]bool
	stmtDups []int
	owner    map[int]int // expr id -> owning statement id
	// raw worklists for verification: every surviving (id, owner) pair,
	// including invalid ids the maps above cannot hold.
	nodes []scanNode
}

type scanNode struct {
	id    int
	owner int  // owning statement id (for expressions); 0 for statements
	expr  bool // true when the node is an expression
}

// scan walks the module and collects every surviving location.
func (m *Module) scan() *scanState {
	st := &scanState{stmts: map[int]bool{}, owner: map[int]int{}}
	for gi, g := range m.file.Globals {
		ownerID := m.globalID[gi]
		st.stmts[ownerID] = true
		st.nodes = append(st.nodes, scanNode{id: ownerID})
		minic.InspectExpr(g.Init, func(e minic.Expr) {
			st.addExpr(e.Pos(), ownerID)
		})
	}
	for _, fd := range m.file.Funcs {
		minic.InspectStmts(fd.Body, func(s minic.Stmt) bool {
			id := s.Pos()
			if st.stmts[id] {
				st.stmtDups = append(st.stmtDups, id)
			}
			st.stmts[id] = true
			st.nodes = append(st.nodes, scanNode{id: id})
			minic.StmtExprs(s, func(root minic.Expr) {
				minic.InspectExpr(root, func(e minic.Expr) {
					st.addExpr(e.Pos(), id)
				})
			})
			return true
		})
	}
	return st
}

func (st *scanState) addExpr(id, ownerID int) {
	if _, dup := st.owner[id]; !dup {
		st.owner[id] = ownerID
	}
	st.nodes = append(st.nodes, scanNode{id: id, owner: ownerID, expr: true})
}

// verifyLocations applies checks (a) and (b) to the post-pass scan.
func (m *Module) verifyLocations(rep *PassReport, before, after *scanState, rm *minic.RemapSet) {
	seenFinding := map[string]bool{}
	add := func(kind FindingKind, id int, format string, args ...any) {
		detail := fmt.Sprintf(format, args...)
		// One finding per (kind, detail): a shared subtree re-scanned
		// through several paths must not flood the report.
		key := fmt.Sprintf("%d|%s", kind, detail)
		if seenFinding[key] {
			return
		}
		seenFinding[key] = true
		rep.Findings = append(rep.Findings, Finding{
			Pass: rep.Pass, Kind: kind, Line: m.origLine[id], Detail: detail,
		})
	}

	for _, dup := range after.stmtDups {
		add(FindingLocReattributed, dup,
			"location %d (orig line %d) appears on more than one surviving statement", dup, m.origLine[dup])
	}
	for _, n := range after.nodes {
		switch {
		case n.id <= 0:
			what := "statement"
			if n.expr {
				what = "expression"
			}
			add(FindingLocMissing, n.id, "surviving %s lost its location", what)
		case !n.expr:
			if !m.stmtIDs[n.id] {
				if m.exprIDs[n.id] {
					add(FindingLocReattributed, n.id,
						"statement carries expression location %d (orig line %d)", n.id, m.origLine[n.id])
				} else {
					add(FindingLocInvented, n.id, "statement carries unassigned location %d", n.id)
				}
			} else if !before.stmts[n.id] {
				add(FindingLocReattributed, n.id,
					"statement location %d (orig line %d) was not live before this pass", n.id, m.origLine[n.id])
			}
		default: // expression
			if m.exprIDs[n.id] {
				prevOwner, had := before.owner[n.id]
				switch {
				case !had:
					if !rm.Declared(n.id, n.owner) {
						add(FindingLocReattributed, n.id,
							"expression location %d (orig line %d) was not live before this pass", n.id, m.origLine[n.id])
					}
				case prevOwner != n.owner:
					if !rm.Declared(prevOwner, n.owner) && !rm.Declared(n.id, n.owner) {
						add(FindingLocReattributed, n.id,
							"expression location %d (orig line %d) moved from statement %d (orig line %d) to statement %d (orig line %d) without a declared remap",
							n.id, m.origLine[n.id], prevOwner, m.origLine[prevOwner], n.owner, m.origLine[n.owner])
					}
				}
			} else if m.stmtIDs[n.id] {
				// A new expression placed at its own statement's location is
				// the correct production behaviour; any other statement's
				// location is a re-attribution.
				if n.id != n.owner && !rm.Declared(n.id, n.owner) {
					add(FindingLocReattributed, n.id,
						"expression carries statement location %d (orig line %d) inside a different statement", n.id, m.origLine[n.id])
				}
			} else {
				add(FindingLocInvented, n.id, "expression carries unassigned location %d", n.id)
			}
		}
	}
}

// verifyVars applies check (c): the per-function variable sets must not
// widen.
func (m *Module) verifyVars(rep *PassReport) {
	if !m.varsOK {
		return
	}
	for _, set := range m.prevVars {
		rep.VarsBefore += len(set)
	}
	vars, err := m.checkVars()
	if err != nil {
		rep.Findings = append(rep.Findings, Finding{
			Pass: rep.Pass, Kind: FindingCheckFailed,
			Detail: fmt.Sprintf("module does not type-check after pass: %v", err),
		})
		m.varsOK = false
		return
	}
	for fn, set := range vars {
		rep.VarsAfter += len(set)
		prev, ok := m.prevVars[fn]
		if !ok {
			rep.Findings = append(rep.Findings, Finding{
				Pass: rep.Pass, Kind: FindingVarWidened,
				Detail: fmt.Sprintf("function %q appeared during optimisation", fn),
			})
			continue
		}
		for name := range set {
			if !prev[name] {
				rep.Findings = append(rep.Findings, Finding{
					Pass: rep.Pass, Kind: FindingVarWidened,
					Detail: fmt.Sprintf("function %q gained variable %q — the debug tables would claim liveness the original never had", fn, name),
				})
			}
		}
	}
	m.prevVars = vars
}

// checkVars type-checks the module and returns each function's variable
// set (parameters + locals, the names the debug info would claim).
func (m *Module) checkVars() (map[string]map[string]bool, error) {
	if _, err := minic.Check(m.file, m.nats); err != nil {
		return nil, err
	}
	out := make(map[string]map[string]bool, len(m.file.Funcs))
	for _, fd := range m.file.Funcs {
		set := make(map[string]bool, len(fd.SlotNames))
		for _, name := range fd.SlotNames {
			set[name] = true
		}
		out[fd.Name] = set
	}
	return out, nil
}

// setStmtLine writes a synthetic location id into a statement node.
func setStmtLine(s minic.Stmt, id int) {
	switch st := s.(type) {
	case *minic.BlockStmt:
		st.Line = id
	case *minic.VarDeclStmt:
		st.Line = id
	case *minic.AssignStmt:
		st.Line = id
	case *minic.IncDecStmt:
		st.Line = id
	case *minic.ExprStmt:
		st.Line = id
	case *minic.IfStmt:
		st.Line = id
	case *minic.WhileStmt:
		st.Line = id
	case *minic.ForStmt:
		st.Line = id
	case *minic.ParallelForStmt:
		st.Line = id
	case *minic.ReturnStmt:
		st.Line = id
	case *minic.BreakStmt:
		st.Line = id
	case *minic.ContinueStmt:
		st.Line = id
	}
}

// setExprLine writes a synthetic location id into an expression node.
func setExprLine(e minic.Expr, id int) {
	switch x := e.(type) {
	case *minic.IntLit:
		x.Line = id
	case *minic.FloatLit:
		x.Line = id
	case *minic.BoolLit:
		x.Line = id
	case *minic.StringLit:
		x.Line = id
	case *minic.NullLit:
		x.Line = id
	case *minic.Ident:
		x.Line = id
	case *minic.BinaryExpr:
		x.Line = id
	case *minic.UnaryExpr:
		x.Line = id
	case *minic.IndexExpr:
		x.Line = id
	case *minic.FieldExpr:
		x.Line = id
	case *minic.CallExpr:
		x.Line = id
	case *minic.NewExpr:
		x.Line = id
	case *minic.CastExpr:
		x.Line = id
	}
}
