package minic

import (
	"fmt"
	"strings"
	"unicode"
)

// Error is a positioned compilation error for the mini-C language.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

func errf(file string, line, col int, format string, args ...any) *Error {
	return &Error{File: file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lexer turns mini-C source text into tokens. Comments use // and /* */.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (lx *lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(lx.file, startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans and returns the next token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Line: line, Col: col}, nil
	}
	c := lx.peek()

	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Line: line, Col: col}, nil
		}
		return Token{Kind: IDENT, Text: text, Line: line, Col: col}, nil

	case isDigit(c):
		start := lx.pos
		isFloat := false
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' && isDigit(lx.peek2()) {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			save := lx.pos
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			if isDigit(lx.peek()) {
				isFloat = true
				for lx.pos < len(lx.src) && isDigit(lx.peek()) {
					lx.advance()
				}
			} else {
				lx.pos = save
			}
		}
		text := lx.src[start:lx.pos]
		kind := INTLIT
		if isFloat {
			kind = FLOATLIT
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case c == '"':
		lx.advance()
		var b strings.Builder
		for {
			if lx.pos >= len(lx.src) {
				return Token{}, errf(lx.file, line, col, "unterminated string literal")
			}
			ch := lx.advance()
			if ch == '"' {
				break
			}
			if ch == '\n' {
				return Token{}, errf(lx.file, line, col, "newline in string literal")
			}
			if ch == '\\' {
				if lx.pos >= len(lx.src) {
					return Token{}, errf(lx.file, line, col, "unterminated escape sequence")
				}
				esc := lx.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case 'r':
					b.WriteByte('\r')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case '0':
					b.WriteByte(0)
				default:
					return Token{}, errf(lx.file, lx.line, lx.col, "unknown escape sequence \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: STRINGLIT, Text: b.String(), Line: line, Col: col}, nil
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Line: line, Col: col}, nil
	}
	one := func(k Kind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Line: line, Col: col}, nil
	}

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case '.':
		return one(Dot)
	case '+':
		if lx.peek2() == '=' {
			return two(PlusAssign)
		}
		if lx.peek2() == '+' {
			return two(Inc)
		}
		return one(Plus)
	case '-':
		if lx.peek2() == '=' {
			return two(MinusAssign)
		}
		if lx.peek2() == '>' {
			return two(Arrow)
		}
		if lx.peek2() == '-' {
			return two(Dec)
		}
		return one(Minus)
	case '*':
		return one(Star)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '&':
		if lx.peek2() == '&' {
			return two(AndAnd)
		}
		return one(Amp)
	case '|':
		if lx.peek2() == '|' {
			return two(OrOr)
		}
		return Token{}, errf(lx.file, line, col, "unexpected character '|'")
	case '!':
		if lx.peek2() == '=' {
			return two(Neq)
		}
		return one(Not)
	case '=':
		if lx.peek2() == '=' {
			return two(Eq)
		}
		return one(Assign)
	case '<':
		if lx.peek2() == '=' {
			return two(Le)
		}
		if lx.peek2() == '<' {
			return two(Shl)
		}
		return one(Lt)
	case '>':
		if lx.peek2() == '=' {
			return two(Ge)
		}
		if lx.peek2() == '>' {
			return two(Shr)
		}
		return one(Gt)
	}
	return Token{}, errf(lx.file, line, col, "unexpected character %q", string(rune(c)))
}

// lexAll scans the entire source, returning the token stream ending in EOF.
func lexAll(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
