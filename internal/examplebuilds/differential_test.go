package examplebuilds

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xr"
	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

// ranSession builds the named example, attaches a session, and runs the
// program to completion so the in-debuggee D2X table constructors have
// executed. The returned buffer is the debuggee/debugger output sink.
func ranSession(t *testing.T, name string) (*d2x.Build, *minic.VM, *bytes.Buffer) {
	t.Helper()
	build, err := Build(name)
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	var out bytes.Buffer
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatalf("session for %s: %v", name, err)
	}
	if err := d.Execute("run"); err != nil {
		t.Fatalf("running %s: %v", name, err)
	}
	return build, d.Process().VM, &out
}

// sweepAddrs calls fn for every address of the build's debug info — each
// function's PC range plus a margin past its last line entry — and for a
// handful of addresses no function owns.
func sweepAddrs(t *testing.T, info *dwarfish.Info, fn func(rip int64)) {
	t.Helper()
	n := 0
	for fi := range info.Funcs {
		f := &info.Funcs[fi]
		maxPC := 0
		for _, e := range f.Lines {
			if e.PC > maxPC {
				maxPC = e.PC
			}
		}
		for pc := 0; pc <= maxPC+2; pc++ {
			fn(dwarfish.EncodeAddr(dwarfish.Addr{FuncIndex: f.FuncIndex, PC: pc}))
			n++
		}
	}
	// Addresses outside any function: stage-1 misses both paths must
	// agree on.
	for _, a := range []dwarfish.Addr{
		{FuncIndex: len(info.Funcs) + 7, PC: 0},
		{FuncIndex: -1, PC: 3},
	} {
		fn(dwarfish.EncodeAddr(a))
		n += 1
	}
	if n == 0 {
		t.Fatal("address sweep visited nothing — debug info has no line entries")
	}
}

// TestFusedMatchesTwoStageReference is the differential-correctness
// check behind the fused resolution index (CI runs it explicitly): on
// every address of every example program, the fused path must return the
// identical record pointer, generated line, and error as the original
// two-stage mapping it replaced.
func TestFusedMatchesTwoStageReference(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			build, vm, _ := ranSession(t, name)
			rt := build.Runtime
			sweepAddrs(t, rt.Info(), func(rip int64) {
				rec, gl, err := rt.RecordAt(vm, rip)
				recRef, glRef, errRef := rt.RecordAtReference(vm, rip)
				if (err == nil) != (errRef == nil) {
					t.Fatalf("rip %#x: fused err=%v, reference err=%v", rip, err, errRef)
				}
				if err != nil && err.Error() != errRef.Error() {
					t.Fatalf("rip %#x: fused err %q, reference err %q", rip, err, errRef)
				}
				if rec != recRef || gl != glRef {
					t.Fatalf("rip %#x: fused (%p, line %d) != reference (%p, line %d)",
						rip, rec, gl, recRef, glRef)
				}
			})
		})
	}
}

// TestXBTOutputMatchesReferenceRenderer drives the real xbt entry point
// (append-rendered through the pooled buffers) at every address of every
// example program and demands byte-identical output to a fmt-based
// rendering of the reference two-stage resolution.
func TestXBTOutputMatchesReferenceRenderer(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			build, vm, out := ranSession(t, name)
			rt := build.Runtime
			nat, _, ok := build.Program.Natives.Lookup(d2xr.NativeXBT)
			if !ok {
				t.Fatalf("%s: xbt native not registered", name)
			}
			sweepAddrs(t, rt.Info(), func(rip int64) {
				out.Reset()
				_, err := nat.Handler(&minic.NativeCall{
					VM:   vm,
					Args: []minic.Value{minic.IntVal(rip), minic.IntVal(0)},
				})
				got := out.String()

				rec, gl, refErr := rt.RecordAtReference(vm, rip)
				if refErr != nil {
					if err == nil || err.Error() != refErr.Error() {
						t.Fatalf("rip %#x: xbt err %v, reference err %v", rip, err, refErr)
					}
					if got != "" {
						t.Fatalf("rip %#x: xbt wrote %q despite error", rip, got)
					}
					return
				}
				if err != nil {
					t.Fatalf("rip %#x: xbt failed (%v) where reference resolved", rip, err)
				}
				var want string
				if rec == nil || len(rec.Stack) == 0 {
					want = fmt.Sprintf("No D2X context for generated line %d\n", gl)
				} else {
					var b strings.Builder
					for i, loc := range rec.Stack {
						fmt.Fprintf(&b, "#%d ", i)
						if loc.Function != "" {
							fmt.Fprintf(&b, "in %s ", loc.Function)
						}
						fmt.Fprintf(&b, "at %s:%d\n", loc.File, loc.Line)
					}
					want = b.String()
				}
				if got != want {
					t.Fatalf("rip %#x: xbt output diverged\n got: %q\nwant: %q", rip, got, want)
				}
			})
		})
	}
}
