// Package examplebuilds constructs the repository's example D2X builds —
// the four case-study pipelines under examples/ (pagerankdelta, power,
// einsum, quickstart) — from one place. d2xlint verifies them, the
// differential-correctness check sweeps them, and anything else that
// needs "every example program" iterates Names/Build instead of keeping
// its own copy of the staging code.
package examplebuilds

import (
	"fmt"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/einsum"
	"d2x/internal/graphit"
	"d2x/internal/minic"
)

// Names lists the example builds in canonical order.
func Names() []string {
	return []string{"pagerankdelta", "power", "einsum", "quickstart"}
}

// Build constructs the named example.
func Build(name string) (*d2x.Build, error) {
	return buildMode(name, false)
}

// BuildOptimized constructs the named example with the mini-C optimiser
// enabled — the staging is identical, only the link mode differs, so a
// Build/BuildOptimized pair is a differential-testing fixture.
func BuildOptimized(name string) (*d2x.Build, error) {
	return buildMode(name, true)
}

func buildMode(name string, optimize bool) (*d2x.Build, error) {
	switch name {
	case "pagerankdelta":
		return pagerankDelta(optimize)
	case "power":
		return power(optimize)
	case "einsum":
		return einsumBuild(optimize)
	case "quickstart":
		return quickstart(optimize)
	}
	return nil, fmt.Errorf("examplebuilds: unknown pipeline %q", name)
}

// PagerankDelta compiles the GraphIt PageRankDelta case study (paper §2,
// Fig. 6) with D2X enabled.
func PagerankDelta() (*d2x.Build, error) { return pagerankDelta(false) }

func pagerankDelta(optimize bool) (*d2x.Build, error) {
	art, err := graphit.CompileToC("pagerankdelta.gt", graphit.PageRankDeltaSrc,
		"pagerankdelta.sched", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		return nil, err
	}
	return art.LinkOptimizing(optimize)
}

// Power stages the BuildIt power_15 example (paper Fig. 8): a
// specialised exponentiation with the exponent erased at staging time.
func Power() (*d2x.Build, error) { return power(false) }

func power(optimize bool) (*d2x.Build, error) {
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("power_15", []buildit.Param{{Name: "base", Type: minic.IntType}}, minic.IntType)
	exp := buildit.NewStatic(f, "exponent", 15)
	res := f.Decl("res", f.IntLit(1))
	x := f.Decl("x", f.Arg(0))
	for exp.Get() > 0 {
		if exp.Get()%2 == 1 {
			f.Assign(res, f.Mul(res, x))
		}
		exp.Set(exp.Get() / 2)
		if exp.Get() > 0 {
			f.Assign(x, f.Mul(x, x))
		}
	}
	f.Return(res)
	m := bb.Func("main", nil, minic.IntType)
	r := m.Decl("r", m.Call("power_15", minic.IntType, m.IntLit(3)))
	m.Printf("%d\n", r)
	m.Return(m.IntLit(0))
	return bb.Link("power_gen.c", d2x.LinkOptions{Optimize: optimize})
}

// Einsum stages the matrix-vector einsum example (paper Fig. 11).
func Einsum() (*d2x.Build, error) { return einsumBuild(false) }

func einsumBuild(optimize bool) (*d2x.Build, error) {
	const M, N = 16, 8
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("m_v_mul", []buildit.Param{
		{Name: "output", Type: einsum.IntArrayType},
		{Name: "matrix", Type: einsum.IntArrayType},
		{Name: "input", Type: einsum.IntArrayType},
	}, minic.VoidType)
	env := einsum.New(f)
	c := env.Tensor("c", f.Arg(0), M)
	a := env.Tensor("a", f.Arg(1), M, N)
	bt := env.Tensor("b", f.Arg(2), N)
	ii, jj := einsum.NewIndex("i"), einsum.NewIndex("j")
	if err := bt.Assign(einsum.Const(1), jj); err != nil {
		return nil, err
	}
	if err := c.Assign(einsum.Mul(einsum.Const(2), a.At(ii, jj), bt.At(jj)), ii); err != nil {
		return nil, err
	}
	f.Return(buildit.Expr{})
	m := bb.Func("main", nil, minic.IntType)
	out := m.DeclArr("output", minic.IntType, m.IntLit(M))
	mat := m.DeclArr("matrix", minic.IntType, m.IntLit(M*N))
	in := m.DeclArr("input", minic.IntType, m.IntLit(N))
	m.Do(m.Call("m_v_mul", minic.VoidType, out, mat, in))
	m.Return(m.IntLit(0))
	return bb.Link("einsum_gen.c", d2x.LinkOptions{Optimize: optimize})
}

// Quickstart replicates the staging of examples/quickstart: an unrolled
// sum_squares with an erased static, the smallest D2X build.
func Quickstart() (*d2x.Build, error) { return quickstart(false) }

func quickstart(optimize bool) (*d2x.Build, error) {
	bb := buildit.NewBuilder()
	buildit.EnableD2X(bb)
	f := bb.Func("sum_squares", []buildit.Param{{Name: "n", Type: minic.IntType}}, minic.IntType)
	unroll := buildit.NewStatic(f, "unroll", 4)
	total := f.Decl("total", f.IntLit(0))
	for unroll.Get() > 0 {
		f.AddAssign(total, f.Mul(f.Arg(0), f.Arg(0)))
		unroll.Set(unroll.Get() - 1)
	}
	f.Return(total)
	m := bb.Func("main", nil, minic.IntType)
	m.Printf("%d\n", m.Call("sum_squares", minic.IntType, m.IntLit(5)))
	m.Return(m.IntLit(0))
	return bb.Link("quickstart_gen.c", d2x.LinkOptions{Optimize: optimize})
}
