package examplebuilds

import (
	"testing"

	"d2x/internal/progen"
)

// TestReplayByteIdenticalExamples runs the time-travel differential
// oracle over every example pipeline: a recorded session rewound with
// `record goto` must regenerate its forward transcripts byte for byte
// (stop banners, program output, bt, xbt) on real DSL-compiled builds,
// not just the generated corpus.
func TestReplayByteIdenticalExamples(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			b, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			if err := progen.CheckReplay(b, 20); err != nil {
				t.Error(err)
			}
		})
	}
}
