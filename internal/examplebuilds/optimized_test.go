package examplebuilds

import (
	"bytes"
	"testing"

	"d2x/internal/d2x"
	"d2x/internal/minic"
)

// builtPair returns the reference and optimised builds of one example.
func builtPair(t *testing.T, name string) (*d2x.Build, *d2x.Build) {
	t.Helper()
	ref, err := Build(name)
	if err != nil {
		t.Fatalf("building %s: %v", name, err)
	}
	opt, err := BuildOptimized(name)
	if err != nil {
		t.Fatalf("building %s optimised: %v", name, err)
	}
	return ref, opt
}

// TestOptimizedBuildsVerifyClean runs the full verifier — including the
// opt/line-attribution and opt/debugify-* checks — over the optimised
// build of every example. The optimiser must not cost a single check.
func TestOptimizedBuildsVerifyClean(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			build, err := BuildOptimized(name)
			if err != nil {
				t.Fatalf("building %s optimised: %v", name, err)
			}
			rep := build.Verify()
			if rep.Errors() > 0 || rep.Warnings() > 0 {
				t.Errorf("optimised %s has verifier findings:\n%s", name, rep)
			}
		})
	}
}

// TestOptimizedRunMatchesReference: both build modes of every example
// produce byte-identical program output.
func TestOptimizedRunMatchesReference(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			ref, opt := builtPair(t, name)
			refOut, _, err := ref.Run()
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			optOut, _, err := opt.Run()
			if err != nil {
				t.Fatalf("optimised run: %v", err)
			}
			if refOut != optOut {
				t.Errorf("output diverged:\nref: %q\nopt: %q", refOut, optOut)
			}
		})
	}
}

// TestFusedMatchesTwoStageReferenceOptimized repeats the fused-index
// differential sweep on the optimised build of every example: pruning
// statements reshapes the line table the fused index is built over, so
// the optimised builds exercise lookup shapes the reference builds
// cannot (dead entries, shrunk PC ranges).
func TestFusedMatchesTwoStageReferenceOptimized(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			build, err := BuildOptimized(name)
			if err != nil {
				t.Fatalf("building %s optimised: %v", name, err)
			}
			var out bytes.Buffer
			d, err := build.NewSession(&out)
			if err != nil {
				t.Fatalf("session: %v", err)
			}
			defer d.Close()
			if err := d.Execute("run"); err != nil {
				t.Fatalf("run: %v", err)
			}
			vm := d.Process().VM
			rt := build.Runtime
			sweepAddrs(t, rt.Info(), func(rip int64) {
				rec, gl, err := rt.RecordAt(vm, rip)
				recRef, glRef, errRef := rt.RecordAtReference(vm, rip)
				if (err == nil) != (errRef == nil) {
					t.Fatalf("rip %#x: fused err=%v, reference err=%v", rip, err, errRef)
				}
				if err != nil && err.Error() != errRef.Error() {
					t.Fatalf("rip %#x: fused err %q, reference err %q", rip, err, errRef)
				}
				if rec != recRef || gl != glRef {
					t.Fatalf("rip %#x: fused (%p, line %d) != reference (%p, line %d)",
						rip, rec, gl, recRef, glRef)
				}
			})
		})
	}
}

// TestOptimizedBuildsActuallyOptimize guards the fixture itself: the
// optimiser must rewrite something in at least one example, otherwise
// the optimised sweeps above are running the same programs twice.
func TestOptimizedBuildsActuallyOptimize(t *testing.T) {
	rewrites := 0
	for _, name := range Names() {
		build, err := Build(name)
		if err != nil {
			t.Fatalf("building %s: %v", name, err)
		}
		f, err := minic.Parse(build.Program.SourceName, build.Program.SourceText)
		if err != nil {
			t.Fatalf("re-parsing %s: %v", name, err)
		}
		rewrites += minic.Optimize(f)
	}
	if rewrites == 0 {
		t.Error("the optimiser rewrote nothing across the examples — the optimised differential fixtures are vacuous")
	}
}
