package einsum

import (
	"fmt"
	"strings"
	"testing"

	"d2x/internal/buildit"
	"d2x/internal/d2x"
	"d2x/internal/debugger"
	"d2x/internal/minic"
)

// stageMVMul stages Figure 10's program: b[j] = 1 (constant-propagated),
// c[i] = 2 * a[i][j] * b[j] (matrix-vector multiply with the constant
// folded in). M rows, N columns. Returns the staged function's name.
func stageMVMul(b *buildit.Builder, m, n int) string {
	f := b.Func(fmt.Sprintf("m_v_mul_%d_%d", m, n), []buildit.Param{
		{Name: "output", Type: IntArrayType},
		{Name: "matrix", Type: IntArrayType},
		{Name: "input", Type: IntArrayType},
	}, minic.VoidType)
	env := New(f)
	c := env.Tensor("c", f.Arg(0), m)
	a := env.Tensor("a", f.Arg(1), m, n)
	bt := env.Tensor("b", f.Arg(2), n)
	i, j := NewIndex("i"), NewIndex("j")
	if err := bt.Assign(Const(1), j); err != nil {
		panic(err)
	}
	if err := c.Assign(Mul(Const(2), a.At(i, j), bt.At(j)), i); err != nil {
		panic(err)
	}
	f.Return(buildit.Expr{})
	return f.Name()
}

// stageHarness wraps the staged kernel with a main that allocates buffers,
// fills the matrix deterministically, runs the kernel, and prints a
// checksum of the output.
func stageHarness(b *buildit.Builder, kernel string, m, n int) {
	mn := b.Func("main", nil, minic.IntType)
	out := mn.DeclArr("output", minic.IntType, mn.IntLit(int64(m)))
	mat := mn.DeclArr("matrix", minic.IntType, mn.IntLit(int64(m*n)))
	in := mn.DeclArr("input", minic.IntType, mn.IntLit(int64(n)))
	mn.For("k", mn.IntLit(0), mn.IntLit(int64(m*n)), func(k buildit.Expr) {
		mn.Assign(mn.Index(mat, k), mn.Mod(k, mn.IntLit(7)))
	})
	mn.Do(mn.Call(kernel, minic.VoidType, out, mat, in))
	sum := mn.Decl("sum", mn.IntLit(0))
	mn.For("k", mn.IntLit(0), mn.IntLit(int64(m)), func(k buildit.Expr) {
		mn.AddAssign(sum, mn.Index(out, k))
	})
	mn.Printf("%d\n", sum)
	mn.Return(mn.IntLit(0))
}

// oracle computes the expected checksum in Go.
func oracle(m, n int) int {
	sum := 0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum += 2 * ((i*n + j) % 7) * 1
		}
	}
	return sum
}

func buildMVMul(t *testing.T, m, n int, withD2X bool) *d2x.Build {
	t.Helper()
	b := buildit.NewBuilder()
	if withD2X {
		buildit.EnableD2X(b)
	}
	kernel := stageMVMul(b, m, n)
	stageHarness(b, kernel, m, n)
	build, err := b.Link("einsum_gen.c", d2x.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return build
}

func TestMVMulComputesCorrectly(t *testing.T) {
	for _, dims := range [][2]int{{16, 8}, {1, 1}, {3, 5}, {8, 8}} {
		m, n := dims[0], dims[1]
		build := buildMVMul(t, m, n, false)
		out, _, err := build.Run()
		if err != nil {
			t.Fatalf("%dx%d: %v", m, n, err)
		}
		want := fmt.Sprintf("%d\n", oracle(m, n))
		if out != want {
			t.Errorf("%dx%d: output %q, want %q", m, n, out, want)
		}
	}
}

func TestConstantPropagationSpecializesCode(t *testing.T) {
	build := buildMVMul(t, 16, 8, false)
	// b was assigned the constant 1, so the generated kernel must not
	// read the input buffer at all: the access was folded to the literal.
	kernel := build.Source[strings.Index(build.Source, "m_v_mul"):]
	kernel = kernel[:strings.Index(kernel, "func int main")]
	// input[] appears exactly once: the initialising write. The multiply
	// loop reads the folded literal instead of the buffer.
	if got := strings.Count(kernel, "input["); got != 1 {
		t.Errorf("input[] referenced %d times, want 1 (the init write):\n%s", got, kernel)
	}
	if !strings.Contains(kernel, "input[j_1] = 1;") {
		t.Errorf("missing initialising write:\n%s", kernel)
	}
	if !strings.Contains(kernel, "* 1") {
		t.Errorf("expected folded literal 1 in the multiply loop:\n%s", kernel)
	}
}

func TestNonConstantTensorIsNotFolded(t *testing.T) {
	b := buildit.NewBuilder()
	f := b.Func("kernel", []buildit.Param{
		{Name: "output", Type: IntArrayType},
		{Name: "input", Type: IntArrayType},
	}, minic.VoidType)
	env := New(f)
	c := env.Tensor("c", f.Arg(0), 4)
	v := env.Tensor("v", f.Arg(1), 4)
	i := NewIndex("i")
	// No constant assignment: v stays unknown and must be read.
	if err := c.Assign(Mul(Const(3), v.At(i)), i); err != nil {
		t.Fatal(err)
	}
	f.Return(buildit.Expr{})
	src, _, err := b.Generate("k.c")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "input[") {
		t.Errorf("unknown tensor folded away:\n%s", src)
	}
}

func TestConstantInvalidation(t *testing.T) {
	b := buildit.NewBuilder()
	f := b.Func("kernel", []buildit.Param{
		{Name: "buf", Type: IntArrayType},
		{Name: "other", Type: IntArrayType},
	}, minic.VoidType)
	env := New(f)
	tns := env.Tensor("t", f.Arg(0), 4)
	oth := env.Tensor("o", f.Arg(1), 4)
	i := NewIndex("i")
	if err := tns.Assign(Const(5), i); err != nil {
		t.Fatal(err)
	}
	if tns.constVal == nil || *tns.constVal != 5 {
		t.Fatalf("constVal = %v, want 5", tns.constVal)
	}
	// Assigning from an unknown tensor invalidates the lattice value.
	if err := tns.Assign(oth.At(i), i); err != nil {
		t.Fatal(err)
	}
	if tns.constVal != nil {
		t.Errorf("constVal not invalidated: %v", *tns.constVal)
	}
}

func TestAssignmentErrors(t *testing.T) {
	b := buildit.NewBuilder()
	f := b.Func("kernel", []buildit.Param{{Name: "buf", Type: IntArrayType}}, minic.VoidType)
	env := New(f)
	tns := env.Tensor("t", f.Arg(0), 4, 4)
	i, j := NewIndex("i"), NewIndex("j")
	if err := tns.Assign(Const(1), i); err == nil {
		t.Error("rank mismatch accepted")
	}
	if err := tns.Assign(Const(1), i, i); err == nil {
		t.Error("repeated LHS index accepted")
	}
	if err := tns.Assign(Mul(), i, j); err == nil {
		t.Error("empty Mul accepted")
	}
	v := env.Tensor("v", f.Arg(0), 4)
	if err := v.Assign(tns.At(i), i); err == nil {
		t.Error("rank mismatch on access accepted")
	}
}

func TestContractionDimsMismatch(t *testing.T) {
	b := buildit.NewBuilder()
	f := b.Func("kernel", []buildit.Param{
		{Name: "o", Type: IntArrayType},
		{Name: "p", Type: IntArrayType},
		{Name: "q", Type: IntArrayType},
	}, minic.VoidType)
	env := New(f)
	out := env.Tensor("out", f.Arg(0), 2)
	p := env.Tensor("p", f.Arg(1), 2, 3)
	q := env.Tensor("q", f.Arg(2), 4)
	i, j := NewIndex("i"), NewIndex("j")
	if err := out.Assign(Mul(p.At(i, j), q.At(j)), i); err == nil {
		t.Error("contraction extent mismatch accepted (3 vs 4)")
	}
}

// ---- Figure 11: debugging the einsum DSL with zero DSL changes ----

func TestFig11DebuggerSession(t *testing.T) {
	build := buildMVMul(t, 16, 8, true)
	var out strings.Builder
	d, err := build.NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	// Break on the kernel's accumulation line.
	var accLine int
	for idx, l := range strings.Split(build.Source, "\n") {
		if strings.Contains(l, "acc_") && strings.Contains(l, "+=") {
			accLine = idx + 1
			break
		}
	}
	if accLine == 0 {
		t.Fatalf("no accumulation line in generated code:\n%s", build.Source)
	}
	exec := func(lines ...string) {
		t.Helper()
		for _, l := range lines {
			if err := d.Execute(l); err != nil {
				t.Fatalf("command %q: %v", l, err)
			}
		}
	}
	exec(fmt.Sprintf("break einsum_gen.c:%d", accLine), "run")
	if d.LastStop().Reason != debugger.StopBreakpoint {
		t.Fatalf("stop = %v", d.LastStop().Reason)
	}
	// xbt walks into the DSL implementation (einsum.go) and up to the
	// user's staging code — Figure 11's frames #0..#7.
	out.Reset()
	exec("xbt")
	tr := out.String()
	if !strings.Contains(tr, "einsum.go") {
		t.Errorf("xbt missing DSL-implementation frames:\n%s", tr)
	}
	if !strings.Contains(tr, "einsum_test.go") {
		t.Errorf("xbt missing user staging frame:\n%s", tr)
	}
	// xvars shows the constant-propagation lattice: b.constant_val = 1.
	out.Reset()
	exec("xvars b.constant_val")
	if !strings.Contains(out.String(), "b.constant_val = 1") {
		t.Errorf("xvars b.constant_val:\n%s", out.String())
	}
	// The other tensors are unknown at this point.
	out.Reset()
	exec("xvars a.constant_val")
	if !strings.Contains(out.String(), "a.constant_val = unknown") {
		t.Errorf("xvars a.constant_val:\n%s", out.String())
	}
	// Continue to completion; the program still computes correctly.
	out.Reset()
	exec("delete", "continue")
	if !strings.Contains(out.String(), fmt.Sprint(oracle(16, 8))) {
		t.Errorf("final output:\n%s", out.String())
	}
}
