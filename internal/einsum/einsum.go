// Package einsum is a small tensor-expression DSL built on the buildit
// staging framework — the paper's second §5.2 case study. The original is
// "a mere 330 lines of code" on BuildIt's website; this implementation is
// the same shape: tensors with static dimensions wrap dynamic buffers,
// assignments in Einstein notation (c[i] = 2 * a[i][j] * b[j]) generate
// loop nests with contraction over indices that appear only on the right,
// and a constant-propagation analysis runs through *static* state.
//
// Crucially, this package contains NO debugging code whatsoever. Because
// BuildIt carries the D2X integration, every einsum program is fully
// debuggable — xbt walks into the DSL implementation below, and xvars
// shows the constant-propagation lattice (Figure 11) — "without a single
// line of change in the DSL implementation" (paper §5.2).
package einsum

import (
	"fmt"

	"d2x/internal/buildit"
	"d2x/internal/minic"
)

// Index is a symbolic einsum index (i, j, ...).
type Index struct{ name string }

// NewIndex creates a named index.
func NewIndex(name string) Index { return Index{name: name} }

// Env stages einsum programs into one buildit function.
type Env struct {
	f *buildit.FuncBuilder
}

// New returns an einsum environment over the staged function f.
func New(f *buildit.FuncBuilder) *Env { return &Env{f: f} }

// Tensor is a statically-dimensioned view over a dynamic buffer, stored
// row-major. ConstVal is the constant-propagation lattice value: nil means
// "unknown"; a non-nil pointer means every element is known to equal that
// value at this point in the staged program. The lattice value is a
// buildit Static, so it is erased from generated code but visible to the
// debugger through D2X.
type Tensor struct {
	env  *Env
	name string
	data buildit.Expr
	dims []int

	constVal *int
	lattice  *buildit.Static[string]
}

// Tensor declares a tensor view named name over buffer data with the
// given static dimensions.
func (e *Env) Tensor(name string, data buildit.Expr, dims ...int) *Tensor {
	t := &Tensor{env: e, name: name, data: data, dims: dims}
	t.lattice = buildit.NewStatic(e.f, name+".constant_val", "unknown")
	return t
}

// Dims returns the static shape.
func (t *Tensor) Dims() []int { return append([]int(nil), t.dims...) }

// setConst updates the constant-propagation lattice.
func (t *Tensor) setConst(v *int) {
	t.constVal = v
	if v == nil {
		t.lattice.Set("unknown")
	} else {
		t.lattice.Set(fmt.Sprint(*v))
	}
}

// ---- Expressions ----

// Ex is an einsum right-hand-side expression.
type Ex interface {
	// indices reports the symbolic indices the expression uses.
	indices(into map[string]bool)
	// stage lowers the expression under bound index variables, folding
	// tensors whose lattice value is a known constant.
	stage(f *buildit.FuncBuilder, bound map[string]buildit.Expr) (buildit.Expr, error)
	// isConst reports the expression's own constant value, if total.
	isConst() (int, bool)
}

// Const is an integer literal term.
func Const(v int) Ex { return constEx{v: v} }

type constEx struct{ v int }

func (c constEx) indices(map[string]bool) {}
func (c constEx) isConst() (int, bool)    { return c.v, true }
func (c constEx) stage(f *buildit.FuncBuilder, _ map[string]buildit.Expr) (buildit.Expr, error) {
	return f.IntLit(int64(c.v)), nil
}

// At builds an access term t[idx...].
func (t *Tensor) At(idx ...Index) Ex { return accessEx{t: t, idx: idx} }

type accessEx struct {
	t   *Tensor
	idx []Index
}

func (a accessEx) indices(into map[string]bool) {
	for _, ix := range a.idx {
		into[ix.name] = true
	}
}

func (a accessEx) isConst() (int, bool) {
	if a.t.constVal != nil {
		return *a.t.constVal, true
	}
	return 0, false
}

func (a accessEx) stage(f *buildit.FuncBuilder, bound map[string]buildit.Expr) (buildit.Expr, error) {
	// Constant propagation: a tensor whose every element is a known
	// constant is replaced by the literal — the specialisation Figure 10
	// demonstrates (the generated code multiplies by 1, not by
	// input_3[j]).
	if a.t.constVal != nil {
		return f.IntLit(int64(*a.t.constVal)), nil
	}
	if len(a.idx) != len(a.t.dims) {
		return buildit.Expr{}, fmt.Errorf("einsum: tensor %s has rank %d, accessed with %d indices",
			a.t.name, len(a.t.dims), len(a.idx))
	}
	flat, err := a.flatIndex(f, bound)
	if err != nil {
		return buildit.Expr{}, err
	}
	return f.Index(a.t.data, flat), nil
}

// flatIndex lowers the row-major flattened index.
func (a accessEx) flatIndex(f *buildit.FuncBuilder, bound map[string]buildit.Expr) (buildit.Expr, error) {
	var flat buildit.Expr
	for d, ix := range a.idx {
		iv, ok := bound[ix.name]
		if !ok {
			return buildit.Expr{}, fmt.Errorf("einsum: unbound index %q on tensor %s", ix.name, a.t.name)
		}
		if d == 0 {
			flat = iv
			continue
		}
		flat = f.Add(f.Mul(flat, f.IntLit(int64(a.t.dims[d]))), iv)
	}
	return flat, nil
}

// Mul multiplies terms.
func Mul(terms ...Ex) Ex { return opEx{op: "*", terms: terms} }

// Add sums terms.
func Add(terms ...Ex) Ex { return opEx{op: "+", terms: terms} }

type opEx struct {
	op    string
	terms []Ex
}

func (o opEx) indices(into map[string]bool) {
	for _, t := range o.terms {
		t.indices(into)
	}
}

func (o opEx) isConst() (int, bool) {
	acc, start := 0, true
	for _, t := range o.terms {
		v, ok := t.isConst()
		if !ok {
			return 0, false
		}
		if start {
			acc = v
			start = false
			continue
		}
		if o.op == "*" {
			acc *= v
		} else {
			acc += v
		}
	}
	return acc, !start
}

func (o opEx) stage(f *buildit.FuncBuilder, bound map[string]buildit.Expr) (buildit.Expr, error) {
	if len(o.terms) == 0 {
		return buildit.Expr{}, fmt.Errorf("einsum: empty %s expression", o.op)
	}
	acc, err := o.terms[0].stage(f, bound)
	if err != nil {
		return buildit.Expr{}, err
	}
	for _, t := range o.terms[1:] {
		x, err := t.stage(f, bound)
		if err != nil {
			return buildit.Expr{}, err
		}
		if o.op == "*" {
			acc = f.Mul(acc, x)
		} else {
			acc = f.Add(acc, x)
		}
	}
	return acc, nil
}

// ---- Assignment (the einsum operator) ----

// Assign stages `t[lhsIdx...] = rhs`, looping over the left-hand indices
// and summing over indices that appear only on the right (Einstein
// convention). It also advances the constant-propagation lattice: a total
// constant assignment with no contraction makes the tensor constant; any
// other assignment invalidates it.
func (t *Tensor) Assign(rhs Ex, lhsIdx ...Index) error {
	f := t.env.f
	if len(lhsIdx) != len(t.dims) {
		return fmt.Errorf("einsum: tensor %s has rank %d, assigned with %d indices",
			t.name, len(t.dims), len(lhsIdx))
	}
	lhsSet := map[string]bool{}
	for _, ix := range lhsIdx {
		if lhsSet[ix.name] {
			return fmt.Errorf("einsum: repeated index %q on the left of an assignment", ix.name)
		}
		lhsSet[ix.name] = true
	}
	rhsIdx := map[string]bool{}
	rhs.indices(rhsIdx)
	var contracted []string
	for name := range rhsIdx {
		if !lhsSet[name] {
			contracted = append(contracted, name)
		}
	}
	// Deterministic loop order for contraction indices.
	sortStrings(contracted)

	// Contraction dimensions come from any tensor term using the index.
	dimOf, err := contractionDims(rhs, contracted)
	if err != nil {
		return err
	}

	bound := map[string]buildit.Expr{}
	var build func(depth int) error
	build = func(depth int) error {
		if depth < len(lhsIdx) {
			var ferr error
			f.For(lhsIdx[depth].name, f.IntLit(0), f.IntLit(int64(t.dims[depth])), func(iv buildit.Expr) {
				bound[lhsIdx[depth].name] = iv
				ferr = build(depth + 1)
			})
			return ferr
		}
		// All free indices bound: compute the (possibly contracted) value.
		flat, err := accessEx{t: t, idx: lhsIdx}.flatIndex(f, bound)
		if err != nil {
			return err
		}
		if len(contracted) == 0 {
			val, err := rhs.stage(f, bound)
			if err != nil {
				return err
			}
			f.Assign(f.Index(t.data, flat), val)
			return nil
		}
		acc := f.Decl("acc", f.IntLit(0))
		var inner func(ci int) error
		inner = func(ci int) error {
			if ci < len(contracted) {
				name := contracted[ci]
				var ferr error
				f.For(name, f.IntLit(0), f.IntLit(int64(dimOf[name])), func(iv buildit.Expr) {
					bound[name] = iv
					ferr = inner(ci + 1)
				})
				return ferr
			}
			val, err := rhs.stage(f, bound)
			if err != nil {
				return err
			}
			f.AddAssign(acc, val)
			return nil
		}
		if err := inner(0); err != nil {
			return err
		}
		f.Assign(f.Index(t.data, flat), acc)
		return nil
	}
	if err := build(0); err != nil {
		return err
	}

	// Constant-propagation transfer function.
	if v, ok := rhs.isConst(); ok && len(contracted) == 0 {
		t.setConst(&v)
	} else {
		t.setConst(nil)
	}
	return nil
}

// contractionDims finds the static extent of each contracted index by
// scanning tensor access terms.
func contractionDims(e Ex, contracted []string) (map[string]int, error) {
	want := map[string]bool{}
	for _, n := range contracted {
		want[n] = true
	}
	dims := map[string]int{}
	var scan func(Ex) error
	scan = func(e Ex) error {
		switch x := e.(type) {
		case accessEx:
			for d, ix := range x.idx {
				if !want[ix.name] {
					continue
				}
				if d >= len(x.t.dims) {
					return fmt.Errorf("einsum: rank mismatch on tensor %s", x.t.name)
				}
				extent := x.t.dims[d]
				if prev, ok := dims[ix.name]; ok && prev != extent {
					return fmt.Errorf("einsum: index %q ranges over %d and %d", ix.name, prev, extent)
				}
				dims[ix.name] = extent
			}
		case opEx:
			for _, t := range x.terms {
				if err := scan(t); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := scan(e); err != nil {
		return nil, err
	}
	for _, n := range contracted {
		if _, ok := dims[n]; !ok {
			return nil, fmt.Errorf("einsum: contracted index %q appears on no tensor", n)
		}
	}
	return dims, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// IntArrayType is the buffer type einsum functions take as parameters.
var IntArrayType = minic.ArrayOf(minic.IntType)
