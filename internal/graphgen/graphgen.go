// Package graphgen generates deterministic synthetic graphs. The paper's
// evaluation debugs GraphIt programs on real-world matrix-market inputs
// (graph.mtx); behaviourally the debugger and D2X only need *a* CSR graph,
// so reproducible synthetic generators stand in for the proprietary
// datasets (see DESIGN.md, substitution table).
//
// Graphs are described by spec strings so they can travel through
// generated code as plain data:
//
//	uniform:n=64,m=256,seed=1   random directed multigraph-free edges
//	powerlaw:n=64,m=256,seed=1  preferential-attachment-style skew
//	chain:n=16                  0->1->2->...->n-1
//	star:n=16                   0->k for all k
//	grid:w=4,h=3                4-neighbour mesh, edges in both directions
//	cycle:n=8                   chain plus the closing edge
package graphgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Graph is an edge list over vertices [0, N).
type Graph struct {
	N     int
	Edges [][2]int32
}

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// rng is a deterministic xorshift64* generator, independent of the
// standard library so specs produce identical graphs forever.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Parse builds the graph a spec string describes.
func Parse(spec string) (*Graph, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	params := map[string]int{}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("graphgen: bad parameter %q in %q", kv, spec)
			}
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("graphgen: bad value %q in %q", v, spec)
			}
			params[strings.TrimSpace(k)] = n
		}
	}
	get := func(key, alt string, dflt int) int {
		if v, ok := params[key]; ok {
			return v
		}
		if alt != "" {
			if v, ok := params[alt]; ok {
				return v
			}
		}
		return dflt
	}
	allowed := map[string][]string{
		"uniform": {"n", "m", "seed"}, "powerlaw": {"n", "m", "seed"},
		"chain": {"n"}, "cycle": {"n"}, "star": {"n"}, "grid": {"w", "h"},
	}
	if keys, ok := allowed[kind]; ok {
		valid := map[string]bool{}
		for _, k := range keys {
			valid[k] = true
		}
		for k := range params {
			if !valid[k] {
				return nil, fmt.Errorf("graphgen: unknown parameter %q for %q graphs", k, kind)
			}
		}
	}

	switch kind {
	case "uniform":
		n := get("n", "", 16)
		m := get("m", "", 4*n)
		seed := get("seed", "", 1)
		return Uniform(n, m, uint64(seed)), nil
	case "powerlaw":
		n := get("n", "", 16)
		m := get("m", "", 4*n)
		seed := get("seed", "", 1)
		return PowerLaw(n, m, uint64(seed)), nil
	case "chain":
		return Chain(get("n", "", 16)), nil
	case "cycle":
		return Cycle(get("n", "", 16)), nil
	case "star":
		return Star(get("n", "", 16)), nil
	case "grid":
		return Grid(get("w", "", 4), get("h", "", 4)), nil
	}
	return nil, fmt.Errorf("graphgen: unknown graph kind %q", kind)
}

// Uniform samples m distinct directed edges uniformly (no self loops).
func Uniform(n, m int, seed uint64) *Graph {
	if n < 2 {
		n = 2
	}
	maxEdges := n * (n - 1)
	if m > maxEdges {
		m = maxEdges
	}
	r := newRng(seed)
	seen := make(map[[2]int32]bool, m)
	g := &Graph{N: n}
	for len(g.Edges) < m {
		s := int32(r.intn(n))
		d := int32(r.intn(n))
		if s == d {
			continue
		}
		e := [2]int32{s, d}
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Edges = append(g.Edges, e)
	}
	sortEdges(g)
	return g
}

// PowerLaw samples edges with destination probability proportional to a
// growing degree bias, producing the skewed degree distributions that make
// GraphIt's hybrid schedules interesting.
func PowerLaw(n, m int, seed uint64) *Graph {
	if n < 2 {
		n = 2
	}
	r := newRng(seed)
	weight := make([]int, n)
	for i := range weight {
		weight[i] = 1
	}
	total := n
	seen := make(map[[2]int32]bool, m)
	g := &Graph{N: n}
	attempts := 0
	for len(g.Edges) < m && attempts < 50*m {
		attempts++
		s := int32(r.intn(n))
		// Weighted pick for the destination.
		pick := r.intn(total)
		d := int32(0)
		for acc := 0; int(d) < n; d++ {
			acc += weight[d]
			if pick < acc {
				break
			}
		}
		if d >= int32(n) {
			d = int32(n - 1)
		}
		if s == d {
			continue
		}
		e := [2]int32{s, d}
		if seen[e] {
			continue
		}
		seen[e] = true
		g.Edges = append(g.Edges, e)
		weight[d] += 2
		total += 2
	}
	sortEdges(g)
	return g
}

// Chain builds 0->1->...->n-1.
func Chain(n int) *Graph {
	if n < 1 {
		n = 1
	}
	g := &Graph{N: n}
	for i := 0; i < n-1; i++ {
		g.Edges = append(g.Edges, [2]int32{int32(i), int32(i + 1)})
	}
	return g
}

// Cycle builds a chain plus the closing edge.
func Cycle(n int) *Graph {
	g := Chain(n)
	if n > 1 {
		g.Edges = append(g.Edges, [2]int32{int32(n - 1), 0})
	}
	return g
}

// Star builds edges 0->k for every k.
func Star(n int) *Graph {
	if n < 1 {
		n = 1
	}
	g := &Graph{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, [2]int32{0, int32(i)})
	}
	return g
}

// Grid builds a w x h mesh with bidirectional 4-neighbour edges.
func Grid(w, h int) *Graph {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	g := &Graph{N: w * h}
	id := func(x, y int) int32 { return int32(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				g.Edges = append(g.Edges, [2]int32{id(x, y), id(x+1, y)}, [2]int32{id(x+1, y), id(x, y)})
			}
			if y+1 < h {
				g.Edges = append(g.Edges, [2]int32{id(x, y), id(x, y+1)}, [2]int32{id(x, y+1), id(x, y)})
			}
		}
	}
	sortEdges(g)
	return g
}

func sortEdges(g *Graph) {
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i][0] != g.Edges[j][0] {
			return g.Edges[i][0] < g.Edges[j][0]
		}
		return g.Edges[i][1] < g.Edges[j][1]
	})
}

// OutDegrees computes per-vertex out-degrees.
func (g *Graph) OutDegrees() []int {
	deg := make([]int, g.N)
	for _, e := range g.Edges {
		deg[e[0]]++
	}
	return deg
}

// Weight returns the deterministic weight of edge i: a function of its
// endpoints, so every consumer (host oracle and generated code) agrees
// without storing anything.
func (g *Graph) Weight(i int) int {
	e := g.Edges[i]
	return 1 + int((e[0]*31+e[1]*17)%9)
}

// ShortestPaths computes single-source shortest paths over the weighted
// edges (Bellman-Ford) — the oracle for the GraphIt SSSP tests. Distances
// of unreachable vertices are -1.
func (g *Graph) ShortestPaths(src int) []int {
	const inf = int(1) << 40
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for round := 0; round < g.N; round++ {
		changed := false
		for i, e := range g.Edges {
			if dist[e[0]] == inf {
				continue
			}
			if nd := dist[e[0]] + g.Weight(i); nd < dist[e[1]] {
				dist[e[1]] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist
}

// Reachable returns the set of vertices reachable from src (BFS), the
// reference oracle the GraphIt BFS tests compare against.
func (g *Graph) Reachable(src int) []bool {
	adj := make([][]int32, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	seen := make([]bool, g.N)
	queue := []int32{int32(src)}
	seen[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, d := range adj[v] {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
	}
	return seen
}
