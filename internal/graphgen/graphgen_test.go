package graphgen

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec      string
		wantN     int
		wantEdges int
	}{
		{"chain:n=5", 5, 4},
		{"cycle:n=5", 5, 5},
		{"star:n=6", 6, 5},
		{"grid:w=3,h=2", 6, 14}, // 3 horizontal pairs*2? (2 per row-gap) -> (w-1)*h*2 + (h-1)*w*2 = 2*2*2+1*3*2 = 8+6
		{"uniform:n=10,m=20,seed=1", 10, 20},
		{"powerlaw:n=10,m=20,seed=1", 10, 20},
	}
	for _, tc := range cases {
		g, err := Parse(tc.spec)
		if err != nil {
			t.Errorf("%s: %v", tc.spec, err)
			continue
		}
		if g.N != tc.wantN {
			t.Errorf("%s: N = %d, want %d", tc.spec, g.N, tc.wantN)
		}
		if g.NumEdges() != tc.wantEdges {
			t.Errorf("%s: edges = %d, want %d", tc.spec, g.NumEdges(), tc.wantEdges)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"mystery:n=4", "uniform:n", "uniform:n=abc", "uniform:nope=3"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, spec := range []string{"uniform:n=32,m=100,seed=7", "powerlaw:n=32,m=100,seed=7"} {
		a, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Edges) != len(b.Edges) {
			t.Fatalf("%s: nondeterministic edge count", spec)
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatalf("%s: edge %d differs", spec, i)
			}
		}
	}
	// Different seeds differ.
	a, _ := Parse("uniform:n=32,m=100,seed=1")
	b, _ := Parse("uniform:n=32,m=100,seed=2")
	same := true
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

// TestGraphInvariants is the generator property test: all edges in range,
// no self loops (for random generators), no duplicate edges.
func TestGraphInvariants(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(50) + 2
		m := r.Intn(4*n) + 1
		kind := []string{"uniform", "powerlaw"}[r.Intn(2)]
		g, err := Parse(fmt.Sprintf("%s:n=%d,m=%d,seed=%d", kind, n, m, r.Intn(1000)+1))
		if err != nil {
			t.Log(err)
			return false
		}
		seen := map[[2]int32]bool{}
		for _, e := range g.Edges {
			if e[0] < 0 || e[0] >= int32(g.N) || e[1] < 0 || e[1] >= int32(g.N) {
				t.Logf("edge out of range: %v (n=%d)", e, g.N)
				return false
			}
			if e[0] == e[1] {
				t.Logf("self loop: %v", e)
				return false
			}
			if seen[e] {
				t.Logf("duplicate edge: %v", e)
				return false
			}
			seen[e] = true
		}
		// Degrees sum to edge count.
		total := 0
		for _, d := range g.OutDegrees() {
			total += d
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReachableOracle(t *testing.T) {
	g, _ := Parse("chain:n=5")
	reach := g.Reachable(0)
	for i, r := range reach {
		if !r {
			t.Errorf("chain vertex %d unreachable", i)
		}
	}
	reach2 := g.Reachable(2)
	if reach2[0] || reach2[1] || !reach2[2] || !reach2[4] {
		t.Errorf("chain reachability from 2 wrong: %v", reach2)
	}
	star, _ := Parse("star:n=4")
	r := star.Reachable(1)
	if r[0] || r[2] || !r[1] {
		t.Errorf("star leaf reachability wrong: %v", r)
	}
}

func TestGridConnected(t *testing.T) {
	g, _ := Parse("grid:w=5,h=3")
	for i, r := range g.Reachable(0) {
		if !r {
			t.Errorf("grid vertex %d unreachable", i)
		}
	}
}

func TestPowerLawSkew(t *testing.T) {
	g := PowerLaw(100, 800, 3)
	inDeg := make([]int, g.N)
	for _, e := range g.Edges {
		inDeg[e[1]]++
	}
	maxDeg, minDeg := 0, 1<<30
	for _, d := range inDeg {
		if d > maxDeg {
			maxDeg = d
		}
		if d < minDeg {
			minDeg = d
		}
	}
	// Preferential attachment concentrates edges: the hottest vertex must
	// be far above a uniform share (8 per vertex here).
	if maxDeg < 16 {
		t.Errorf("max in-degree %d suggests no skew", maxDeg)
	}
}

func TestDegenerateSizes(t *testing.T) {
	for _, spec := range []string{"chain:n=1", "star:n=1", "grid:w=1,h=1", "cycle:n=1", "uniform:n=2,m=100,seed=1"} {
		g, err := Parse(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if g.N < 1 {
			t.Errorf("%s: N = %d", spec, g.N)
		}
		for _, e := range g.Edges {
			if e[0] >= int32(g.N) || e[1] >= int32(g.N) {
				t.Errorf("%s: edge %v out of range", spec, e)
			}
		}
	}
	// uniform with m > max possible clamps.
	g, _ := Parse("uniform:n=3,m=100,seed=1")
	if g.NumEdges() > 6 {
		t.Errorf("uniform overproduced edges: %d", g.NumEdges())
	}
}
