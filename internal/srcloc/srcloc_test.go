package srcloc

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLocString(t *testing.T) {
	cases := []struct {
		loc  Loc
		want string
	}{
		{Loc{File: "a.gt", Line: 12}, "a.gt:12"},
		{Loc{File: "a.gt", Line: 12, Col: 3}, "a.gt:12:3"},
		{Loc{Line: 5}, "<unknown>:5"},
	}
	for _, tc := range cases {
		if got := tc.loc.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.loc, got, tc.want)
		}
	}
}

func TestIsZeroAndWithFunction(t *testing.T) {
	var z Loc
	if !z.IsZero() {
		t.Error("zero Loc not IsZero")
	}
	l := Loc{File: "f", Line: 1}
	if l.IsZero() {
		t.Error("non-zero Loc IsZero")
	}
	if got := l.WithFunction("main"); got.Function != "main" || got.File != "f" {
		t.Errorf("WithFunction = %+v", got)
	}
	if l.Function != "" {
		t.Error("WithFunction mutated the receiver")
	}
}

func TestStackOps(t *testing.T) {
	var s Stack
	if _, ok := s.Top(); ok {
		t.Error("empty stack has a top")
	}
	s = s.Push(Loc{File: "outer.gt", Line: 10, Function: "main"})
	s = s.Push(Loc{File: "inner.gt", Line: 2, Function: "udf"})
	top, ok := s.Top()
	if !ok || top.Function != "udf" {
		t.Errorf("top = %+v", top)
	}
	str := s.String()
	if !strings.Contains(str, "#0 in udf at inner.gt:2") ||
		!strings.Contains(str, "#1 in main at outer.gt:10") {
		t.Errorf("stack string:\n%s", str)
	}

	c := s.Clone()
	if !c.Equal(s) {
		t.Error("clone not equal")
	}
	c[0].Line = 99
	if s[0].Line == 99 {
		t.Error("clone shares storage")
	}
	if s.Equal(c) {
		t.Error("modified clone still equal")
	}
	if s.Equal(s[:1]) {
		t.Error("different lengths equal")
	}
	if Stack(nil).Clone() != nil {
		t.Error("nil clone not nil")
	}
}

// TestPushOrderProperty: pushing n frames yields a stack whose Top is the
// last pushed and whose length is n.
func TestPushOrderProperty(t *testing.T) {
	check := func(lines []int) bool {
		var s Stack
		for i, l := range lines {
			s = s.Push(Loc{File: "f", Line: l, Col: i})
		}
		if len(s) != len(lines) {
			return false
		}
		for i := range lines {
			// Innermost-first: s[0] is the last push.
			if s[i].Line != lines[len(lines)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
