// Package srcloc provides the shared vocabulary for talking about source
// locations across the D2X stack: positions in DSL inputs, positions in
// generated code, and stacks of positions (the "extended stack" of the
// paper, which maps one generated line to the sequence of DSL-level calls
// that produced it).
package srcloc

import (
	"fmt"
	"strings"
)

// Loc identifies one position in one file. Line and Col are 1-based; a zero
// Col means "column unknown", which is common for whole-line locations.
// Function optionally names the enclosing function, mirroring the optional
// third argument of d2x_context::push_source_loc in the paper's Table 1.
type Loc struct {
	File     string
	Line     int
	Col      int
	Function string
}

// IsZero reports whether l carries no location information at all.
func (l Loc) IsZero() bool {
	return l.File == "" && l.Line == 0 && l.Col == 0 && l.Function == ""
}

// String renders the location in the conventional file:line[:col] form used
// by compilers and debuggers.
func (l Loc) String() string {
	var b strings.Builder
	if l.File == "" {
		b.WriteString("<unknown>")
	} else {
		b.WriteString(l.File)
	}
	fmt.Fprintf(&b, ":%d", l.Line)
	if l.Col > 0 {
		fmt.Fprintf(&b, ":%d", l.Col)
	}
	return b.String()
}

// WithFunction returns a copy of l with the function name set.
func (l Loc) WithFunction(fn string) Loc {
	l.Function = fn
	return l
}

// Stack is a sequence of locations ordered innermost-first, exactly like a
// debugger backtrace: Stack[0] is the most specific frame (e.g. the line
// inside a UDF) and the last element is the outermost caller (e.g. the
// edgeset.apply operator site, or main).
type Stack []Loc

// Clone returns a copy that shares no storage with s.
func (s Stack) Clone() Stack {
	if s == nil {
		return nil
	}
	out := make(Stack, len(s))
	copy(out, s)
	return out
}

// Push returns a new stack with l as the new innermost frame.
func (s Stack) Push(l Loc) Stack {
	out := make(Stack, 0, len(s)+1)
	out = append(out, l)
	out = append(out, s...)
	return out
}

// Top returns the innermost frame and true, or a zero Loc and false when the
// stack is empty.
//
//d2x:noalloc
func (s Stack) Top() (Loc, bool) {
	if len(s) == 0 {
		return Loc{}, false
	}
	return s[0], true
}

// String renders the stack in backtrace form, one frame per line, with GDB
// style "#N" prefixes.
func (s Stack) String() string {
	var b strings.Builder
	for i, l := range s {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "#%d ", i)
		if l.Function != "" {
			fmt.Fprintf(&b, "in %s ", l.Function)
		}
		fmt.Fprintf(&b, "at %s", l.String())
	}
	return b.String()
}

// Equal reports whether two stacks are frame-for-frame identical.
func (s Stack) Equal(other Stack) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}
