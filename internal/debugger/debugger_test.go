package debugger

import (
	"encoding/json"
	"strings"
	"testing"

	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// The power-by-squaring program, the generated-code shape from the paper's
// Figure 8, with line numbers that the tests below assert against.
const powerSrc = `func int power_15(int arg0) {
	int res_1 = 1;
	int x_2 = arg0;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	x_2 = x_2 * x_2;
	res_1 = res_1 * x_2;
	return res_1;
}
func int main() {
	int r = power_15(3);
	printf("%d\n", r);
	return 0;
}
`

// attach compiles src, builds debug info, and attaches a debugger. The
// shared output buffer captures both the program's stdout and the
// debugger transcript, interleaved as in a real terminal session.
func attach(t *testing.T, src string) (*Debugger, *strings.Builder) {
	t.Helper()
	prog, err := minic.Compile("gen.c", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	blob := dwarfish.Build(prog).Encode()
	proc, err := NewProcess(prog, blob, &out)
	if err != nil {
		t.Fatal(err)
	}
	return New(proc, &out), &out
}

func mustExec(t *testing.T, d *Debugger, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := d.Execute(l); err != nil {
			t.Fatalf("command %q: %v", l, err)
		}
	}
}

func TestBreakpointByLine(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	if d.LastStop().Reason != StopBreakpoint {
		t.Fatalf("stop = %v, want breakpoint", d.LastStop().Reason)
	}
	if !strings.Contains(out.String(), "Breakpoint 1, power_15 (arg0=3) at gen.c:5") {
		t.Errorf("unexpected transcript:\n%s", out.String())
	}
	// res_1 has been multiplied once: 3.
	v, err := d.EvalExpr("res_1")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 3 {
		t.Errorf("res_1 = %d, want 3", v.I)
	}
}

func TestBreakpointByFunction(t *testing.T) {
	d, _ := attach(t, powerSrc)
	mustExec(t, d, "break power_15", "run")
	stop := d.LastStop()
	if stop.Reason != StopBreakpoint {
		t.Fatalf("stop = %v", stop.Reason)
	}
	if _, line, _ := d.lineAt(0); line != 2 {
		t.Errorf("stopped at line %d, want 2 (first statement)", line)
	}
}

func TestContinueAndExit(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run", "continue")
	if d.LastStop().Reason != StopExited {
		t.Fatalf("stop = %v, want exited", d.LastStop().Reason)
	}
	if !strings.Contains(out.String(), "14348907") {
		t.Errorf("program output missing from transcript:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[Program exited]") {
		t.Errorf("missing exit banner:\n%s", out.String())
	}
}

func TestStepInto(t *testing.T) {
	d, _ := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:14", "run") // int r = power_15(3);
	mustExec(t, d, "step")
	// Stepping into the call lands on power_15's first line.
	if f := d.SelectedFrame(); f == nil || f.Fn.Name != "power_15" {
		t.Fatalf("after step, frame = %v", f)
	}
	if _, line, _ := d.lineAt(0); line != 2 {
		t.Errorf("after step, line = %d, want 2", line)
	}
}

func TestStepOverAndFinish(t *testing.T) {
	d, _ := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:14", "run", "next")
	// next steps over the call: still in main, on line 15.
	if f := d.SelectedFrame(); f.Fn.Name != "main" {
		t.Fatalf("after next, in %s, want main", f.Fn.Name)
	}
	if _, line, _ := d.lineAt(0); line != 15 {
		t.Errorf("after next, line = %d, want 15", line)
	}
	// r is now assigned.
	if v, err := d.EvalExpr("r"); err != nil || v.I != 14348907 {
		t.Errorf("r = %v err=%v, want 14348907", v, err)
	}

	// Fresh session: step in then finish.
	d2, _ := attach(t, powerSrc)
	mustExec(t, d2, "break power_15", "run", "finish")
	if f := d2.SelectedFrame(); f.Fn.Name != "main" {
		t.Errorf("after finish, in %s, want main", f.Fn.Name)
	}
}

func TestBacktraceAndFrames(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	out.Reset()
	mustExec(t, d, "bt")
	tr := out.String()
	if !strings.Contains(tr, "#0  power_15 (arg0=3) at gen.c:5") {
		t.Errorf("bt missing frame 0:\n%s", tr)
	}
	if !strings.Contains(tr, "in main () at gen.c:14") {
		t.Errorf("bt missing caller frame:\n%s", tr)
	}

	out.Reset()
	mustExec(t, d, "frame 1")
	if !strings.Contains(out.String(), "#1") || !strings.Contains(out.String(), "main") {
		t.Errorf("frame 1 output:\n%s", out.String())
	}
	// In frame 1, main's local r is visible (still 0, the call has not
	// returned).
	if v, err := d.EvalExpr("r"); err != nil || v.I != 0 {
		t.Errorf("r in frame 1 = %v err=%v", v, err)
	}
	// And power_15's local is not.
	if _, err := d.EvalExpr("res_1"); err == nil {
		t.Error("res_1 visible from frame 1")
	}
	mustExec(t, d, "down")
	if v, err := d.EvalExpr("res_1"); err != nil || v.I != 3 {
		t.Errorf("res_1 after down = %v err=%v", v, err)
	}
}

func TestPrintExpressions(t *testing.T) {
	src := `struct pair {
	int a;
	int b;
}
global int g = 7;
func int main() {
	pair* p = new pair;
	p->a = 10;
	p->b = 20;
	int[] arr = new int[4];
	arr[2] = 42;
	int x = 5;
	int* px = &x;
	printf("done\n");
	return 0;
}
`
	d, out := attach(t, src)
	mustExec(t, d, "break gen.c:14", "run")
	out.Reset()
	mustExec(t, d,
		"print g",
		"print p->a",
		"print arr[2]",
		"print *px",
		"print &x",
		"print x",
		"print -x",
	)
	tr := out.String()
	for _, want := range []string{"$1 = 7", "$2 = 10", "$3 = 42", "$4 = 5", "$5 = &5", "$6 = 5", "$7 = -5"} {
		if !strings.Contains(tr, want) {
			t.Errorf("print transcript missing %q:\n%s", want, tr)
		}
	}
	// Struct formatting via the pointer.
	out.Reset()
	mustExec(t, d, "print p")
	if !strings.Contains(out.String(), "a = 10, b = 20") {
		t.Errorf("struct print:\n%s", out.String())
	}
}

func TestSetVariable(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run", "set var res_1 = 100", "continue")
	// res_1 was forced to 100 right after the first multiply; remaining
	// multiplies are by x^2=9, x^4=81, x^8=6561: 100*9*81*6561.
	if !strings.Contains(out.String(), "478296900") {
		t.Errorf("set var did not take effect:\n%s", out.String())
	}
}

func TestCallIntoInferior(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	out.Reset()
	mustExec(t, d, "call power_15(2)")
	if !strings.Contains(out.String(), "= 32768") { // 2^15
		t.Errorf("call result:\n%s", out.String())
	}
	// The inferior's state is untouched by the synthetic call.
	if v, _ := d.EvalExpr("res_1"); v.I != 3 {
		t.Errorf("res_1 disturbed by call: %d", v.I)
	}
}

func TestRegistersAndInfo(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	rip, ok := d.RegisterRIP()
	if !ok {
		t.Fatal("no rip")
	}
	addr := dwarfish.DecodeAddr(rip)
	if file, line, ok := d.Process().Info.LineFor(addr); !ok || line != 5 || file != "gen.c" {
		t.Errorf("rip decodes to %s:%d ok=%v, want gen.c:5", file, line, ok)
	}
	if _, ok := d.RegisterRSP(); !ok {
		t.Fatal("no rsp")
	}
	out.Reset()
	mustExec(t, d, "info registers", "info locals", "info args", "info breakpoints")
	tr := out.String()
	for _, want := range []string{"rip  0x", "res_1 = 3", "arg0 = 3", "power_15 at gen.c:5"} {
		if !strings.Contains(tr, want) {
			t.Errorf("info transcript missing %q:\n%s", want, tr)
		}
	}
}

func TestListCommand(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	out.Reset()
	mustExec(t, d, "list")
	tr := out.String()
	if !strings.Contains(tr, ">5") || !strings.Contains(tr, "x_2 = x_2 * x_2;") {
		t.Errorf("list output:\n%s", tr)
	}
}

func TestDeleteBreakpoint(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "break gen.c:7", "delete 1", "run")
	if _, line, _ := d.lineAt(0); line != 7 {
		t.Errorf("stopped at %d, want 7 (bp 1 deleted)", line)
	}
	out.Reset()
	mustExec(t, d, "delete")
	mustExec(t, d, "continue")
	if d.LastStop().Reason != StopExited {
		t.Errorf("after deleting all bps, stop = %v", d.LastStop().Reason)
	}
}

func TestBreakpointHitCount(t *testing.T) {
	src := `func int main() {
	int total = 0;
	for (int i = 0; i < 5; i++) {
		total += i;
	}
	return total;
}
`
	d, _ := attach(t, src)
	mustExec(t, d, "break gen.c:4", "run")
	for i := 0; i < 4; i++ {
		mustExec(t, d, "continue")
	}
	bp := d.Breakpoints()[0]
	if bp.Hits != 5 {
		t.Errorf("hits = %d, want 5", bp.Hits)
	}
	mustExec(t, d, "continue")
	if d.LastStop().Reason != StopExited {
		t.Errorf("stop = %v, want exited", d.LastStop().Reason)
	}
}

func TestFaultInspection(t *testing.T) {
	src := `func int crash(int[] a, int i) {
	return a[i];
}
func int main() {
	int[] arr = new int[2];
	return crash(arr, 10);
}
`
	d, out := attach(t, src)
	mustExec(t, d, "run")
	stop := d.LastStop()
	if stop.Reason != StopFault {
		t.Fatalf("stop = %v, want fault", stop.Reason)
	}
	if !strings.Contains(out.String(), "out of range") {
		t.Errorf("fault banner:\n%s", out.String())
	}
	// Post-mortem: frame and variables are inspectable.
	if f := d.SelectedFrame(); f == nil || f.Fn.Name != "crash" {
		t.Fatalf("fault frame = %v", f)
	}
	if v, err := d.EvalExpr("i"); err != nil || v.I != 10 {
		t.Errorf("i at fault = %v err=%v", v, err)
	}
}

func TestThreadsCommand(t *testing.T) {
	src := `global int total = 0;
func int main() {
	parallel_for (int i = 0; i < 100; i++) {
		atomic_add(&total, i);
		atomic_add(&total, 0);
	}
	return total;
}
`
	d, out := attach(t, src)
	mustExec(t, d, "break gen.c:5", "run")
	stop := d.LastStop()
	if stop.Reason != StopBreakpoint {
		t.Fatalf("stop = %v", stop.Reason)
	}
	// The hit is on a worker thread, not the main thread.
	if stop.Thread.ID == 0 {
		t.Errorf("breakpoint hit on main thread; expected a worker")
	}
	out.Reset()
	mustExec(t, d, "info threads")
	tr := out.String()
	if !strings.Contains(tr, "waiting") {
		t.Errorf("info threads should show the waiting spawner:\n%s", tr)
	}
	// The loop variable of the worker is visible.
	if v, err := d.EvalExpr("i"); err != nil || v.Kind != minic.VInt {
		t.Errorf("i on worker = %v err=%v", v, err)
	}
	// Switch focus to the main (waiting) thread.
	out.Reset()
	mustExec(t, d, "thread 0")
	if !strings.Contains(out.String(), "[Switching to thread 0]") {
		t.Errorf("thread switch transcript:\n%s", out.String())
	}
}

func TestEvalGeneratesCommands(t *testing.T) {
	d, _ := attach(t, powerSrc)
	// eval formats a string and executes it as a command; the argument is
	// itself a call into the inferior (str_len("hello") = 5), the exact
	// mechanism D2X's xbreak uses to let the debuggee drive the debugger.
	mustExec(t, d, `eval "break gen.c:%d", str_len("hello")`)
	bps := d.Breakpoints()
	if len(bps) != 1 || bps[0].Sites[0].Line != 5 {
		t.Fatalf("eval-installed breakpoints = %+v, want one at line 5", bps)
	}
	mustExec(t, d, "run")
	if _, line, _ := d.lineAt(0); line != 5 {
		t.Errorf("stopped at %d, want 5", line)
	}
}

func TestEvalBreakInsertion(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, `eval "break gen.c:5\nbreak gen.c:7"`)
	if n := len(d.Breakpoints()); n != 2 {
		t.Fatalf("eval created %d breakpoints, want 2", n)
	}
	out.Reset()
	mustExec(t, d, "run", "continue")
	if _, line, _ := d.lineAt(0); line != 7 {
		t.Errorf("second stop at %d, want 7", line)
	}
}

func TestMacros(t *testing.T) {
	d, out := attach(t, powerSrc)
	err := d.LoadMacros(`
# D2X-style helper macros
define pres
  print res_1
end
define pplus
  print $arg0
  print $arg1
end
`)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, d, "break gen.c:5", "run")
	out.Reset()
	mustExec(t, d, "pres", "pplus arg0 res_1")
	tr := out.String()
	if !strings.Contains(tr, "= 3") {
		t.Errorf("macro output:\n%s", tr)
	}
	// Macro errors are reported.
	if err := d.LoadMacros("define broken\n"); err == nil {
		t.Error("unterminated define accepted")
	}
	if err := d.LoadMacros("stray command\n"); err == nil {
		t.Error("stray command accepted")
	}
	if err := d.Execute("nosuchcmd"); err == nil {
		t.Error("unknown command accepted")
	}
}

func TestMangledCallNames(t *testing.T) {
	d, _ := attach(t, powerSrc)
	mustExec(t, d, "break gen.c:5", "run")
	// C++-style qualified names map onto the flat namespace.
	v, err := d.EvalExpr("power_15(2)")
	if err != nil || v.I != 32768 {
		t.Fatalf("direct call: %v err=%v", v, err)
	}
	if _, err := d.EvalExpr("no::such(2)"); err == nil {
		t.Error("bogus qualified name resolved")
	}
}

func TestErrors(t *testing.T) {
	d, _ := attach(t, powerSrc)
	for _, cmd := range []string{
		"continue",        // not running
		"break gen.c:999", // no code there
		"break nofunc",    // no such function
		"frame 5",         // no stack yet -> handled below after run
	} {
		if err := d.Execute(cmd); err == nil {
			t.Errorf("command %q succeeded, expected error", cmd)
		}
	}
	mustExec(t, d, "break gen.c:5", "run")
	for _, cmd := range []string{
		"frame 99",
		"print nosuchvar",
		"print arr[",
		"thread 42",
		"delete 9",
		"info nothing",
		"set var 3 = 4",
	} {
		if err := d.Execute(cmd); err == nil {
			t.Errorf("command %q succeeded, expected error", cmd)
		}
	}
	// Running `run` twice is an error.
	if err := d.Execute("run"); err == nil {
		t.Error("second run accepted")
	}
}

func TestUDFMultiSiteBreakpoint(t *testing.T) {
	// Two specialisations of the same logical UDF live at different
	// lines; a single source line can also expand to multiple sites when
	// the same line holds several statements. Here we check the
	// [N locations] annotation path with a line that appears once, then
	// verify two separate breakpoints both trigger.
	src := `func void updateEdge_1(int s, int d) {
	atomic_add(&s, d);
}
func void updateEdge_2(int s, int d) {
	s += d;
}
func int main() {
	updateEdge_1(1, 2);
	updateEdge_2(3, 4);
	return 0;
}
`
	d, _ := attach(t, src)
	mustExec(t, d, "break updateEdge_1", "break updateEdge_2", "run")
	if f := d.SelectedFrame(); f.Fn.Name != "updateEdge_1" {
		t.Errorf("first stop in %s", f.Fn.Name)
	}
	mustExec(t, d, "continue")
	if f := d.SelectedFrame(); f.Fn.Name != "updateEdge_2" {
		t.Errorf("second stop in %s", f.Fn.Name)
	}
}

// TestStatsAndTraceCommands: the observability commands print the metric
// snapshot as JSON and the event trace as JSONL on the transcript, and
// reflect the commands dispatched before them.
func TestStatsAndTraceCommands(t *testing.T) {
	d, out := attach(t, powerSrc)
	before := obs.GetCounter("debugger.cmd.run").Value()
	mustExec(t, d, "break gen.c:4", "run")
	out.Reset()
	mustExec(t, d, "stats")
	var snap map[string]any
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("stats output is not JSON: %v\n%s", err, out.String())
	}
	counters, _ := snap["counters"].(map[string]any)
	if got, _ := counters["debugger.cmd.run"].(float64); int64(got) != before+1 {
		t.Errorf("debugger.cmd.run = %v, want %d", got, before+1)
	}

	// The plain debugger emits no trace events itself (only the D2X
	// runtime layers do); feed the ring directly so the dump has content
	// even when this test runs alone.
	obs.Emit(obs.Event{Kind: "cmd", Name: "xbt", Session: 1, DurNS: 42})
	obs.Emit(obs.Event{Kind: "session", Name: "create", Session: 2})
	out.Reset()
	mustExec(t, d, "trace 5")
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 || len(lines) > 5 {
		t.Fatalf("trace 5 printed %d lines:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		var e map[string]any
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Errorf("trace line is not JSON: %v: %q", err, l)
		}
	}
	if err := d.Execute("trace bogus"); err == nil {
		t.Error("trace with junk arg accepted")
	}
}
