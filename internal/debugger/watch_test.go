package debugger

import (
	"strings"
	"testing"
)

const loopSrc = `global int total = 0;
func int main() {
	for (int i = 0; i < 10; i++) {
		total += i;
	}
	printf("%d\n", total);
	return 0;
}
`

func TestConditionalBreakpoint(t *testing.T) {
	d, _ := attach(t, loopSrc)
	mustExec(t, d, "break gen.c:4 if i == 7", "run")
	if d.LastStop().Reason != StopBreakpoint {
		t.Fatalf("stop = %v", d.LastStop().Reason)
	}
	if v, err := d.EvalExpr("i"); err != nil || v.I != 7 {
		t.Errorf("i = %v err=%v, want 7", v, err)
	}
	// total has accumulated 0..6 = 21.
	if v, _ := d.EvalExpr("total"); v.I != 21 {
		t.Errorf("total = %d, want 21", v.I)
	}
	mustExec(t, d, "continue")
	if d.LastStop().Reason != StopExited {
		t.Errorf("stop after continue = %v, want exited (condition never true again)", d.LastStop().Reason)
	}
}

func TestConditionalBreakpointBadExpr(t *testing.T) {
	d, out := attach(t, loopSrc)
	mustExec(t, d, "break gen.c:4 if nosuchvar == 1", "run")
	// Unevaluable condition: stop anyway with a warning (GDB behaviour).
	if d.LastStop().Reason != StopBreakpoint {
		t.Fatalf("stop = %v", d.LastStop().Reason)
	}
	if !strings.Contains(out.String(), "Error in breakpoint condition") {
		t.Errorf("missing condition warning:\n%s", out.String())
	}
}

func TestWatchpointOnGlobal(t *testing.T) {
	d, out := attach(t, loopSrc)
	mustExec(t, d, "watch total", "run")
	stop := d.LastStop()
	if stop.Reason != StopWatchpoint {
		t.Fatalf("stop = %v, want watchpoint", stop.Reason)
	}
	// total first changes 0 -> 1 (i=0 adds nothing).
	if stop.WatchOld.I != 0 || stop.WatchNew.I != 1 {
		t.Errorf("old/new = %d/%d, want 0/1", stop.WatchOld.I, stop.WatchNew.I)
	}
	if !strings.Contains(out.String(), "Old value = 0") || !strings.Contains(out.String(), "New value = 1") {
		t.Errorf("watchpoint banner:\n%s", out.String())
	}
	// Next change: 1 -> 3.
	mustExec(t, d, "continue")
	if got := d.LastStop().WatchNew.I; got != 3 {
		t.Errorf("second stop new value = %d, want 3", got)
	}
	mustExec(t, d, "unwatch 1", "continue")
	if d.LastStop().Reason != StopExited {
		t.Errorf("after unwatch, stop = %v", d.LastStop().Reason)
	}
}

func TestWatchpointInfoAndErrors(t *testing.T) {
	d, out := attach(t, loopSrc)
	mustExec(t, d, "watch total", "info watchpoints")
	if !strings.Contains(out.String(), "watch total") {
		t.Errorf("info watchpoints:\n%s", out.String())
	}
	if err := d.Execute("unwatch 99"); err == nil {
		t.Error("unwatch of unknown id accepted")
	}
	if err := d.Execute("watch"); err == nil {
		t.Error("bare watch accepted")
	}
}

func TestDisplay(t *testing.T) {
	d, out := attach(t, loopSrc)
	mustExec(t, d, "break gen.c:4", "display total", "display i", "run")
	tr := out.String()
	if !strings.Contains(tr, "1: total = 0") {
		t.Errorf("display at first stop:\n%s", tr)
	}
	out.Reset()
	mustExec(t, d, "continue")
	if !strings.Contains(out.String(), "1: total = 0") || !strings.Contains(out.String(), "2: i = 1") {
		t.Errorf("display at second stop:\n%s", out.String())
	}
	mustExec(t, d, "undisplay 1")
	out.Reset()
	mustExec(t, d, "continue")
	if strings.Contains(out.String(), "total =") {
		t.Errorf("undisplayed expression still shown:\n%s", out.String())
	}
	if err := d.Execute("undisplay 42"); err == nil {
		t.Error("undisplay of unknown id accepted")
	}
}

func TestDisasCommand(t *testing.T) {
	d, out := attach(t, powerSrc)
	mustExec(t, d, "disas power_15")
	tr := out.String()
	if !strings.Contains(tr, "power_15:") || !strings.Contains(tr, "storel") {
		t.Errorf("disas output:\n%s", tr)
	}
	// Bare disas uses the selected frame once running.
	mustExec(t, d, "break power_15", "run")
	out.Reset()
	mustExec(t, d, "disas")
	if !strings.Contains(out.String(), "power_15:") {
		t.Errorf("bare disas:\n%s", out.String())
	}
	if err := d.Execute("disas nosuch"); err == nil {
		t.Error("disas of unknown function accepted")
	}
}

func TestWatchpointLocalScopeSkips(t *testing.T) {
	// Watching a local that leaves scope must not wedge the session: the
	// evaluation errors are skipped and execution completes.
	src := `func int helper() {
	int local = 3;
	local += 1;
	return local;
}
func int main() {
	int r = helper();
	printf("%d\n", r);
	return 0;
}
`
	d, out := attach(t, src)
	mustExec(t, d, "break helper", "run", "watch local")
	// Two changes fire (0 -> 3 at the declaration, 3 -> 4 at the update);
	// after helper returns the watch is unevaluable and silently skipped.
	for want := 0; want < 2; want++ {
		mustExec(t, d, "continue")
		if d.LastStop().Reason != StopWatchpoint {
			t.Fatalf("stop %d = %v, want watchpoint", want, d.LastStop().Reason)
		}
	}
	mustExec(t, d, "continue")
	if d.LastStop().Reason != StopExited {
		t.Errorf("stop = %v, want exited", d.LastStop().Reason)
	}
	if !strings.Contains(out.String(), "4\n") {
		t.Errorf("program output missing:\n%s", out.String())
	}
}
