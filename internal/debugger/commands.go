package debugger

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/obs"
)

// Dispatch metrics. The debugger knows nothing about D2X (the arch lint
// enforces it), but it is still part of the observed debug service:
// every command dispatch is counted and timed. Handles are resolved once
// here; the per-command counters below use a fixed canonical name set so
// arbitrary user input cannot mint unbounded metric names.
var (
	dbgCommands = obs.GetCounter("debugger.commands")
	dbgErrors   = obs.GetCounter("debugger.errors")
	dbgLatency  = obs.GetHistogram("debugger.dispatch")

	// dispatchTick drives 1-in-dispatchSampleEvery sampling of the
	// dispatch latency histogram. Command and error counters stay exact;
	// only the distribution is sampled, because on this path two clock
	// reads cost a measurable fraction of a whole D2X command.
	dispatchTick atomic.Int64
)

// dispatchSampleEvery is the dispatch-latency sampling stride.
const dispatchSampleEvery = 8

// dbgCmdCounters maps each canonical command name to its pre-resolved
// counter, so a dispatch pays one map lookup instead of a string concat
// plus a registry lookup.
var dbgCmdCounters = func() map[string]*obs.Counter {
	m := map[string]*obs.Counter{}
	for _, name := range canonicalCmd {
		m[name] = obs.GetCounter("debugger.cmd." + name)
	}
	for _, name := range []string{"macro", "unknown"} {
		m[name] = obs.GetCounter("debugger.cmd." + name)
	}
	return m
}()

// canonicalCmd maps every accepted spelling to the canonical command
// name used in metrics ("b" -> "break"). Anything not in the map is a
// macro or an unknown command.
var canonicalCmd = map[string]string{
	"break": "break", "b": "break",
	"delete": "delete", "d": "delete",
	"clear": "clear", "watch": "watch", "unwatch": "unwatch",
	"display": "display", "undisplay": "undisplay",
	"disas": "disas", "disassemble": "disas",
	"run": "run", "r": "run",
	"continue": "continue", "c": "continue",
	"step": "step", "s": "step",
	"next": "next", "n": "next",
	"finish":    "finish",
	"backtrace": "backtrace", "bt": "backtrace",
	"frame": "frame", "f": "frame",
	"up": "up", "down": "down",
	"list": "list", "l": "list",
	"print": "print", "p": "print",
	"call": "call", "set": "set", "eval": "eval",
	"thread": "thread", "t": "thread",
	"info": "info", "echo": "echo",
	"stats": "stats", "trace": "trace",
	"record":       "record",
	"reverse-step": "reverse-step", "rs": "reverse-step",
	"reverse-continue": "reverse-continue", "rc": "reverse-continue",
}

// Execute runs one debugger command line, writing its transcript output to
// the debugger's writer. Unknown commands fall through to user-defined
// macros. Errors are returned (the interactive driver prints them; scripts
// may choose to stop). Every dispatch — including commands a macro or an
// eval expansion issues — is counted and timed in the obs layer.
func (d *Debugger) Execute(line string) error {
	if d.closed {
		return fmt.Errorf("debug session is closed")
	}
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	cmd, rest := splitCommand(line)

	name, known := canonicalCmd[cmd]
	if !known {
		if _, isMacro := d.macros[cmd]; isMacro {
			name = "macro"
		} else {
			name = "unknown"
		}
	}
	var start int64
	if dispatchTick.Add(1)%dispatchSampleEvery == 0 {
		start = obs.NowNanos()
	}
	err := d.run(cmd, rest)
	dbgLatency.SinceNS(start)
	dbgCommands.Inc()
	dbgCmdCounters[name].Inc()
	if err != nil {
		dbgErrors.Inc()
	}
	return err
}

// run dispatches one parsed command.
func (d *Debugger) run(cmd, rest string) error {
	switch cmd {
	case "break", "b":
		return d.cmdBreak(rest)
	case "delete", "d":
		return d.cmdDelete(rest)
	case "clear":
		return d.cmdClear(rest)
	case "watch":
		return d.cmdWatch(rest)
	case "unwatch":
		return d.cmdUnwatch(rest)
	case "display":
		return d.cmdDisplay(rest)
	case "undisplay":
		return d.cmdUndisplay(rest)
	case "disas", "disassemble":
		return d.cmdDisas(rest)
	case "run", "r":
		stop, err := d.Run()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "continue", "c":
		stop, err := d.Continue()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "step", "s":
		stop, err := d.StepInto()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "next", "n":
		stop, err := d.StepOver()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "finish":
		stop, err := d.StepOut()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "backtrace", "bt":
		return d.cmdBacktrace()
	case "frame", "f":
		return d.cmdFrame(rest)
	case "up":
		return d.cmdUpDown(rest, +1)
	case "down":
		return d.cmdUpDown(rest, -1)
	case "list", "l":
		return d.cmdList(rest)
	case "print", "p":
		return d.cmdPrint(rest)
	case "call":
		return d.cmdCall(rest)
	case "set":
		return d.cmdSet(rest)
	case "eval":
		return d.cmdEval(rest)
	case "thread", "t":
		return d.cmdThread(rest)
	case "info":
		return d.cmdInfo(rest)
	case "echo":
		d.printf("%s\n", rest)
		return nil
	case "stats":
		return d.cmdStats()
	case "trace":
		return d.cmdTrace(rest)
	case "record":
		return d.cmdRecord(rest)
	case "reverse-step", "rs":
		stop, err := d.ReverseStep()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	case "reverse-continue", "rc":
		stop, err := d.ReverseContinue()
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	}

	if m, ok := d.macros[cmd]; ok {
		args := d.splitArgsReuse(rest)
		err := d.runMacro(m, args)
		d.putStrArgs(args)
		return err
	}
	return fmt.Errorf("undefined command: %q", cmd)
}

// getStrArgs pops a recycled string slice (length 0) off the freelist.
func (d *Debugger) getStrArgs() []string {
	if n := len(d.strFree); n > 0 {
		a := d.strFree[n-1]
		d.strFree = d.strFree[:n-1]
		return a
	}
	return nil
}

// splitArgsReuse is splitArgs into a recycled slice. Macro dispatch is
// the per-command hot path; macros nest (a body line may invoke another
// macro), so recycled slices live on a freelist, not a single slot.
func (d *Debugger) splitArgsReuse(s string) []string {
	return appendSplitArgs(d.getStrArgs(), s)
}

// putStrArgs returns a macro-argument slice to the freelist, dropping
// the string references it held.
func (d *Debugger) putStrArgs(args []string) {
	for i := range args {
		args[i] = ""
	}
	d.strFree = append(d.strFree, args[:0])
}

// getBuf / putBuf recycle byte scratch buffers (macro substitution).
func (d *Debugger) getBuf() []byte {
	if n := len(d.bufFree); n > 0 {
		b := d.bufFree[n-1]
		d.bufFree = d.bufFree[:n-1]
		return b
	}
	return nil
}

func (d *Debugger) putBuf(b []byte) {
	d.bufFree = append(d.bufFree, b[:0])
}

// ExecuteScript runs commands one per line, stopping at the first error.
func (d *Debugger) ExecuteScript(script string) error {
	for _, line := range strings.Split(script, "\n") {
		if err := d.Execute(line); err != nil {
			return fmt.Errorf("command %q: %w", strings.TrimSpace(line), err)
		}
	}
	return nil
}

func splitCommand(line string) (string, string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i], strings.TrimSpace(line[i+1:])
	}
	return line, ""
}

// splitArgs splits macro arguments on whitespace, honouring quotes.
func splitArgs(s string) []string {
	return appendSplitArgs(nil, s)
}

// appendSplitArgs appends the whitespace-split, quote-honouring arguments
// of s onto args.
func appendSplitArgs(args []string, s string) []string {
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '"' {
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			args = append(args, s[i+1:min(j, len(s))])
			i = j + 1
			continue
		}
		j := i
		for j < len(s) && s[j] != ' ' && s[j] != '\t' {
			j++
		}
		args = append(args, s[i:j])
		i = j
	}
	return args
}

func (d *Debugger) cmdBreak(spec string) error {
	bp, err := d.SetBreakpoint(spec)
	if err != nil {
		return err
	}
	s := bp.Sites[0]
	// Rendered append-style rather than with printf: an xbreak expansion
	// runs one break per generated line, and each %d boxes its int.
	b := d.getBuf()
	b = append(b, "Breakpoint "...)
	b = strconv.AppendInt(b, int64(bp.ID), 10)
	b = append(b, " at "...)
	b = append(b, d.proc.Info.File...)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(s.Line), 10)
	b = append(b, " (in "...)
	b = append(b, s.Func...)
	b = append(b, ')')
	if len(bp.Sites) > 1 {
		b = append(b, " ["...)
		b = strconv.AppendInt(b, int64(len(bp.Sites)), 10)
		b = append(b, " locations]"...)
	}
	b = append(b, '\n')
	_, _ = d.out.Write(b)
	d.putBuf(b)
	return nil
}

func (d *Debugger) cmdDelete(rest string) error {
	if rest == "" {
		for i, bp := range d.bps {
			d.putBP(bp)
			d.bps[i] = nil
		}
		d.bps = d.bps[:0]
		d.printf("Deleted all breakpoints.\n")
		return nil
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return fmt.Errorf("bad breakpoint number %q", rest)
	}
	if err := d.DeleteBreakpoint(id); err != nil {
		return err
	}
	d.printf("Deleted breakpoint %d.\n", id)
	return nil
}

// cmdClear implements GDB's clear: delete breakpoints by source location
// rather than by number. D2X's xdel relies on it, since the debuggee
// cannot know which breakpoint numbers the debugger assigned.
func (d *Debugger) cmdClear(spec string) error {
	sites, err := d.resolveSpec(spec)
	if err != nil {
		return err
	}
	// Filter d.bps in place: site lists are a few entries, so a nested
	// scan beats building a lookup map, and the compaction reuses the
	// slice's backing array. If nothing matches, the compaction was the
	// identity and d.bps is untouched.
	old := d.bps
	kept := old[:0]
	deleted := 0
	for _, bp := range old {
		hit := false
		for _, s := range bp.Sites {
			for _, t := range sites {
				if s.Addr == t.Addr {
					hit = true
					break
				}
			}
			if hit {
				break
			}
		}
		if hit {
			deleted++
			// Append-rendered like cmdBreak: xdel clears one breakpoint
			// per generated line.
			b := d.getBuf()
			b = append(b, "Deleted breakpoint "...)
			b = strconv.AppendInt(b, int64(bp.ID), 10)
			b = append(b, '\n')
			_, _ = d.out.Write(b)
			d.putBuf(b)
			d.putBP(bp)
		} else {
			kept = append(kept, bp)
		}
	}
	if deleted == 0 {
		return fmt.Errorf("no breakpoint at %s", spec)
	}
	for i := len(kept); i < len(old); i++ {
		old[i] = nil // release the compacted-away tail
	}
	d.bps = kept
	return nil
}

func (d *Debugger) cmdBacktrace() error {
	fs := d.frames()
	if len(fs) == 0 {
		return fmt.Errorf("no stack")
	}
	for i := range fs {
		d.printf("%s\n", d.describeFrame(i))
	}
	return nil
}

func (d *Debugger) cmdFrame(rest string) error {
	if rest != "" {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("bad frame number %q", rest)
		}
		if err := d.SelectFrame(n); err != nil {
			return err
		}
	}
	d.printf("%s\n", d.describeFrame(d.selFrame))
	d.printSourceLineAt(d.selFrame)
	return nil
}

func (d *Debugger) cmdUpDown(rest string, dir int) error {
	n := 1
	if rest != "" {
		var err error
		if n, err = strconv.Atoi(rest); err != nil {
			return fmt.Errorf("bad count %q", rest)
		}
	}
	if err := d.SelectFrame(d.selFrame + dir*n); err != nil {
		return err
	}
	d.printf("%s\n", d.describeFrame(d.selFrame))
	d.printSourceLineAt(d.selFrame)
	return nil
}

func (d *Debugger) cmdList(rest string) error {
	center := 0
	if rest != "" {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return fmt.Errorf("bad line number %q", rest)
		}
		center = n
	} else {
		_, line, ok := d.lineAt(d.selFrame)
		if !ok {
			return fmt.Errorf("no source location")
		}
		center = line
	}
	lines := d.proc.VM.Prog.SourceLines()
	lo := max(1, center-4)
	hi := min(len(lines), center+5)
	for n := lo; n <= hi; n++ {
		marker := " "
		if n == center {
			marker = ">"
		}
		d.printf("%s%-5d %s\n", marker, n, lines[n-1])
	}
	return nil
}

func (d *Debugger) cmdPrint(rest string) error {
	if rest == "" {
		return fmt.Errorf("print requires an expression")
	}
	v, err := d.EvalExpr(rest)
	if err != nil {
		return err
	}
	d.valueCounter++
	d.printf("$%d = %s\n", d.valueCounter, minic.FormatValue(v))
	return nil
}

func (d *Debugger) cmdCall(rest string) error {
	if rest == "" {
		return fmt.Errorf("call requires an expression")
	}
	v, err := d.EvalExpr(rest)
	if err != nil {
		return err
	}
	// GDB's call prints non-void results only.
	if v.Kind != minic.VNull {
		d.valueCounter++
		d.printf("$%d = %s\n", d.valueCounter, minic.FormatValue(v))
	}
	return nil
}

func (d *Debugger) cmdSet(rest string) error {
	rest = strings.TrimPrefix(rest, "var ")
	eq := strings.Index(rest, "=")
	if eq < 0 {
		return fmt.Errorf("set requires an assignment")
	}
	if err := d.SetVariable(strings.TrimSpace(rest[:eq]), strings.TrimSpace(rest[eq+1:])); err != nil {
		return err
	}
	// A debugger-applied mutation is not part of the instruction history;
	// checkpointing here keeps replays that cross this stop faithful.
	if rec := d.ActiveRecorder(); rec != nil {
		rec.Checkpoint()
	}
	return nil
}

// cmdEval implements GDB's eval: format the string (arguments may call
// into the debuggee), then execute the result as commands. D2X's xbreak
// depends on this to let the debuggee drive breakpoint insertion.
func (d *Debugger) cmdEval(rest string) error {
	// Both scratch slices come from the debugger's freelists; evaluating
	// an argument may itself pop a slice (nested call), which the
	// freelists handle.
	format, args, err := appendParseFormatArgs(d.getStrArgs(), rest)
	if err != nil {
		d.putStrArgs(args)
		return err
	}
	vals := d.getArgs()
	for _, a := range args {
		v, err := d.EvalExpr(a)
		if err != nil {
			d.putStrArgs(args)
			d.putArgs(vals)
			return err
		}
		vals = append(vals, v)
	}
	d.putStrArgs(args)
	expanded, err := minic.FormatPrintf(format, vals)
	d.putArgs(vals)
	if err != nil {
		return err
	}
	// Iterate lines in place rather than materialising a []string: the
	// expansion of a hot D2X command is a single line.
	for start := 0; start < len(expanded); {
		line := expanded[start:]
		if nl := strings.IndexByte(line, '\n'); nl >= 0 {
			line = line[:nl]
			start += nl + 1
		} else {
			start = len(expanded)
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := d.Execute(line); err != nil {
			return fmt.Errorf("eval-generated command %q: %w", line, err)
		}
	}
	return nil
}

// parseFormatArgs splits `"fmt", arg1, arg2` respecting quotes and nested
// parentheses inside arguments.
func parseFormatArgs(s string) (string, []string, error) {
	return appendParseFormatArgs(nil, s)
}

// appendParseFormatArgs is parseFormatArgs appending onto a (possibly
// recycled) slice. The input slice is returned even on error, so a
// pooled caller can always reclaim it.
func appendParseFormatArgs(args []string, s string) (string, []string, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "\"") {
		return "", args, fmt.Errorf("eval requires a quoted format string")
	}
	format, i, err := scanEvalFormat(s)
	if err != nil {
		return "", args, err
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return format, args, nil
	}
	if !strings.HasPrefix(rest, ",") {
		return "", args, fmt.Errorf("expected ',' after format string")
	}
	rest = rest[1:]
	depth := 0
	start := 0
	inStr := false
	for j := 0; j <= len(rest); j++ {
		if j == len(rest) {
			if a := strings.TrimSpace(rest[start:]); a != "" {
				args = append(args, a)
			}
			break
		}
		switch rest[j] {
		case '"':
			inStr = !inStr
		case '(', '[':
			if !inStr {
				depth++
			}
		case ')', ']':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				args = append(args, strings.TrimSpace(rest[start:j]))
				start = j + 1
			}
		}
	}
	return format, args, nil
}

// scanEvalFormat scans the quoted format string starting at s[0] == '"'
// and returns its unescaped contents plus the index just past the closing
// quote. A format with no escape sequences — every D2X macro's — is
// returned as a substring of the input, with no copy.
func scanEvalFormat(s string) (string, int, error) {
	i := 1
	for i < len(s) && s[i] != '"' && s[i] != '\\' {
		i++
	}
	if i < len(s) && s[i] == '"' {
		return s[1:i], i + 1, nil
	}
	var fb strings.Builder
	fb.WriteString(s[1:i])
	for i < len(s) && s[i] != '"' {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				fb.WriteByte('\n')
			case 't':
				fb.WriteByte('\t')
			default:
				fb.WriteByte(s[i])
			}
		} else {
			fb.WriteByte(s[i])
		}
		i++
	}
	if i >= len(s) {
		return "", 0, fmt.Errorf("unterminated format string")
	}
	return fb.String(), i + 1, nil
}

func (d *Debugger) cmdThread(rest string) error {
	if rest == "" {
		t := d.SelectedThread()
		if t == nil {
			return fmt.Errorf("no threads")
		}
		d.printf("[Current thread is %d]\n", t.ID)
		return nil
	}
	id, err := strconv.Atoi(rest)
	if err != nil {
		return fmt.Errorf("bad thread id %q", rest)
	}
	if err := d.SelectThread(id); err != nil {
		return err
	}
	d.printf("[Switching to thread %d]\n", id)
	if d.frameCount() > 0 {
		d.printf("%s\n", d.describeFrame(0))
	}
	return nil
}

func (d *Debugger) cmdInfo(rest string) error {
	what, _ := splitCommand(rest)
	switch what {
	case "breakpoints", "break", "b":
		if len(d.bps) == 0 {
			d.printf("No breakpoints.\n")
			return nil
		}
		d.printf("Num  Enb  Hits  Where\n")
		for _, bp := range d.bps {
			enb := "y"
			if !bp.Enabled {
				enb = "n"
			}
			locs := make([]string, 0, len(bp.Sites))
			for _, s := range bp.Sites {
				locs = append(locs, fmt.Sprintf("%s at %s:%d", s.Func, d.proc.Info.File, s.Line))
			}
			d.printf("%-4d %-4s %-5d %s\n", bp.ID, enb, bp.Hits, strings.Join(locs, "; "))
		}
		return nil

	case "watchpoints":
		if len(d.watchpoints) == 0 {
			d.printf("No watchpoints.\n")
			return nil
		}
		for _, w := range d.watchpoints {
			d.printf("%-4d watch %s\n", w.ID, w.Expr)
		}
		return nil

	case "record":
		d.infoRecord()
		return nil

	case "display":
		d.showDisplays()
		return nil

	case "locals":
		return d.infoVars(false)
	case "args":
		return d.infoVars(true)

	case "threads":
		for _, t := range d.proc.VM.Threads() {
			cur := " "
			if t.ID == d.selThreadID {
				cur = "*"
			}
			loc := ""
			if top := t.Top(); top != nil {
				addr := dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC}
				if _, line, ok := d.proc.Info.LineFor(addr); ok {
					loc = fmt.Sprintf(" in %s at %s:%d", top.Fn.Name, d.proc.Info.File, line)
				}
			}
			d.printf("%s %-3d %-8s%s\n", cur, t.ID, t.State, loc)
		}
		return nil

	case "registers":
		rip, ok1 := d.RegisterRIP()
		rsp, ok2 := d.RegisterRSP()
		if !ok1 || !ok2 {
			return fmt.Errorf("no frame selected")
		}
		d.printf("rip  0x%012x\n", uint64(rip))
		d.printf("rsp  0x%012x\n", uint64(rsp))
		return nil

	case "functions":
		names := make([]string, 0, len(d.proc.Info.Funcs))
		for _, f := range d.proc.Info.Funcs {
			names = append(names, f.Name)
		}
		sort.Strings(names)
		for _, n := range names {
			d.printf("%s\n", n)
		}
		return nil
	}
	return fmt.Errorf("undefined info command: %q", what)
}

func (d *Debugger) infoVars(params bool) error {
	f := d.SelectedFrame()
	if f == nil {
		return fmt.Errorf("no frame selected")
	}
	fi := d.proc.Info.FuncByIndex(f.FuncIndex)
	if fi == nil {
		return fmt.Errorf("no debug info for current function")
	}
	printed := 0
	for _, v := range fi.Vars {
		if v.Param != params || v.Slot >= len(f.Slots) {
			continue
		}
		d.printf("%s = %s\n", v.Name, minic.FormatValue(f.Slots[v.Slot].V))
		printed++
	}
	if printed == 0 {
		if params {
			d.printf("No arguments.\n")
		} else {
			d.printf("No locals.\n")
		}
	}
	return nil
}

// describeFrame renders one backtrace row in GDB's format:
//
//	#0  power_15 (arg0=3) at power_test.c:11
//	#1  0x000100000019 in main () at power_test.c:25
func (d *Debugger) describeFrame(n int) string {
	fs := d.frames()
	if n < 0 || n >= len(fs) {
		return fmt.Sprintf("#%d  <no frame>", n)
	}
	f := fs[n]
	var b strings.Builder
	fmt.Fprintf(&b, "#%d  ", n)
	if n > 0 {
		if a, ok := d.FrameAddr(n); ok {
			fmt.Fprintf(&b, "0x%012x in ", uint64(uint32(a.PC))|uint64(a.FuncIndex)<<32)
		}
	}
	fmt.Fprintf(&b, "%s (%s)", f.Fn.Name, d.frameArgs(f))
	if file, line, ok := d.lineAt(n); ok {
		fmt.Fprintf(&b, " at %s:%d", file, line)
	}
	return b.String()
}

func (d *Debugger) frameArgs(f *minic.Frame) string {
	fi := d.proc.Info.FuncByIndex(f.FuncIndex)
	if fi == nil {
		return ""
	}
	var parts []string
	for _, v := range fi.Vars {
		if v.Param && v.Slot < len(f.Slots) {
			parts = append(parts, fmt.Sprintf("%s=%s", v.Name, minic.FormatValue(f.Slots[v.Slot].V)))
		}
	}
	return strings.Join(parts, ", ")
}

func (d *Debugger) printSourceLineAt(frameNo int) {
	_, line, ok := d.lineAt(frameNo)
	if !ok {
		return
	}
	text := d.proc.VM.Prog.SourceLine(line)
	d.printf("%d\t%s\n", line, strings.TrimRight(text, " \t"))
}

// reportStop prints the GDB-style banner for a stop.
func (d *Debugger) reportStop(stop Stop) {
	switch stop.Reason {
	case StopBreakpoint:
		d.printf("Breakpoint %d, %s\n", stop.Breakpoint.ID, strings.TrimPrefix(d.describeFrame(0), "#0  "))
		d.printSourceLineAt(0)
		d.showDisplays()
	case StopWatchpoint:
		d.printf("Watchpoint %d: %s\n", stop.Watch.ID, stop.Watch.Expr)
		d.printf("Old value = %s\n", minic.FormatValue(stop.WatchOld))
		d.printf("New value = %s\n", minic.FormatValue(stop.WatchNew))
		d.printf("%s\n", strings.TrimPrefix(d.describeFrame(0), "#0  "))
		d.printSourceLineAt(0)
		d.showDisplays()
	case StopStep:
		d.printf("%s\n", strings.TrimPrefix(d.describeFrame(0), "#0  "))
		d.printSourceLineAt(0)
		d.showDisplays()
	case StopFault:
		d.printf("Program received fault: %v\n", stop.Fault)
		if d.frameCount() > 0 {
			d.printf("%s\n", d.describeFrame(0))
			d.printSourceLineAt(0)
		}
	case StopExited:
		d.printf("[Program exited]\n")
	}
}
