package debugger

import (
	"fmt"

	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

// resumeMode selects how far a resume runs.
type resumeMode int

const (
	modeContinue resumeMode = iota
	modeStepInto
	modeStepOver
	modeStepOut
)

const defaultMaxSteps = 500_000_000

// Run starts the program and continues to the first stop. It mirrors GDB's
// `run`: module initialisers (__init*) execute before the first possible
// stop, like ELF constructors.
func (d *Debugger) Run() (Stop, error) {
	if d.started {
		return Stop{}, fmt.Errorf("the program is already running")
	}
	if err := d.proc.VM.Start(); err != nil {
		return Stop{}, err
	}
	d.started = true
	if ts := d.proc.VM.Threads(); len(ts) > 0 {
		d.selThreadID = ts[0].ID
	}
	return d.resume(modeContinue)
}

// Continue resumes until the next stop.
func (d *Debugger) Continue() (Stop, error) {
	if err := d.checkRunning(); err != nil {
		return Stop{}, err
	}
	return d.resume(modeContinue)
}

// StepInto advances the selected thread by one source line, entering
// calls (GDB `step`).
func (d *Debugger) StepInto() (Stop, error) {
	if err := d.checkRunning(); err != nil {
		return Stop{}, err
	}
	return d.resume(modeStepInto)
}

// StepOver advances the selected thread by one source line without
// entering calls (GDB `next`).
func (d *Debugger) StepOver() (Stop, error) {
	if err := d.checkRunning(); err != nil {
		return Stop{}, err
	}
	return d.resume(modeStepOver)
}

// StepOut runs until the selected frame returns (GDB `finish`).
func (d *Debugger) StepOut() (Stop, error) {
	if err := d.checkRunning(); err != nil {
		return Stop{}, err
	}
	return d.resume(modeStepOut)
}

func (d *Debugger) checkRunning() error {
	if !d.started {
		return fmt.Errorf("the program is not being run")
	}
	if d.lastStop.Reason == StopExited {
		return fmt.Errorf("the program has exited")
	}
	return nil
}

// resume is the scheduler loop. All threads advance in the VM's
// deterministic round-robin; stop conditions are evaluated before each
// statement-start instruction, the same granularity a line-table-driven
// native debugger achieves.
func (d *Debugger) resume(mode resumeMode) (Stop, error) {
	vm := d.proc.VM

	stepThread := d.SelectedThread()
	var startDepth, startLine int
	if stepThread != nil && stepThread.Top() != nil {
		startDepth = len(stepThread.Frames)
		_, startLine, _ = d.lineAt(0)
	}

	limit := d.maxSteps
	if limit <= 0 {
		limit = defaultMaxSteps
	}

	for steps := int64(0); ; steps++ {
		if steps > limit {
			return Stop{}, fmt.Errorf("debugger: resume exceeded %d instructions", limit)
		}
		if ft := vm.Faulted(); ft != nil {
			d.selThreadID = ft.ID
			d.selFrame = 0
			d.skipValid = false
			d.lastStop = Stop{Reason: StopFault, Thread: ft, Fault: ft.Fault}
			return d.lastStop, nil
		}
		if vm.Done() {
			d.skipValid = false
			d.lastStop = Stop{Reason: StopExited}
			return d.lastStop, nil
		}
		t := vm.NextThread()
		if t == nil {
			return Stop{}, fmt.Errorf("debugger: deadlock: no runnable threads")
		}
		top := t.Top()
		if top == nil {
			vm.StepInstr()
			continue
		}
		addr := dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC}
		in := top.Code.Instrs[top.PC]

		// Skip exactly one re-check at the address we stopped at.
		if d.skipValid && t.ID == d.skipThread && addr == d.skipAddr {
			d.skipValid = false
			vm.StepInstr()
			continue
		}

		if in.StmtStart {
			if bp := d.breakpointAt(addr); bp != nil {
				if bp.Cond != "" && !d.condTrue(t, bp.Cond) {
					// Condition false: execute past the site silently.
					d.skipThread = t.ID
					d.skipAddr = addr
					d.skipValid = true
					continue
				}
				bp.Hits++
				d.stopAt(t, StopBreakpoint, bp, addr)
				return d.lastStop, nil
			}
			if len(d.watchpoints) > 0 {
				if w, old, now := d.watchInContext(t); w != nil {
					d.stopAt(t, StopWatchpoint, nil, addr)
					d.lastStop.Watch = w
					d.lastStop.WatchOld = old
					d.lastStop.WatchNew = now
					return d.lastStop, nil
				}
			}
			if mode != modeContinue && t == stepThread {
				depth := len(t.Frames)
				_, line, _ := d.proc.Info.LineFor(addr)
				stopped := false
				switch mode {
				case modeStepInto:
					stopped = depth != startDepth || line != startLine
				case modeStepOver:
					stopped = (depth == startDepth && line != startLine) || depth < startDepth
				case modeStepOut:
					stopped = depth < startDepth
				}
				if stopped {
					d.stopAt(t, StopStep, nil, addr)
					return d.lastStop, nil
				}
			}
		}
		vm.StepInstr()
	}
}

// condTrue evaluates a breakpoint condition in the context of the thread
// that hit the site.
func (d *Debugger) condTrue(t *minic.Thread, cond string) bool {
	savedT, savedF := d.selThreadID, d.selFrame
	d.selThreadID, d.selFrame = t.ID, 0
	v, err := d.EvalExpr(cond)
	d.selThreadID, d.selFrame = savedT, savedF
	if err != nil {
		// An unevaluable condition stops, with the error surfaced, rather
		// than silently never firing — GDB behaves the same way.
		d.printf("Error in breakpoint condition: %v\n", err)
		return true
	}
	return v.Bool()
}

// watchInContext checks watchpoints in the context of the running thread.
func (d *Debugger) watchInContext(t *minic.Thread) (*Watchpoint, minic.Value, minic.Value) {
	savedT, savedF := d.selThreadID, d.selFrame
	d.selThreadID, d.selFrame = t.ID, 0
	w, old, now := d.checkWatchpoints()
	d.selThreadID, d.selFrame = savedT, savedF
	return w, old, now
}

func (d *Debugger) stopAt(t *minic.Thread, reason StopReason, bp *Breakpoint, addr dwarfish.Addr) {
	d.selThreadID = t.ID
	d.selFrame = 0
	d.skipThread = t.ID
	d.skipAddr = addr
	d.skipValid = true
	d.lastStop = Stop{Reason: reason, Breakpoint: bp, Thread: t}
}

// CallValue invokes a function in the debuggee while it is paused and
// returns its result — the debugger feature (GDB `call`) that D2X's whole
// runtime design exploits. Program functions and host-linked natives are
// both callable, as both are "functions linked into the executable".
//
// The NativeCall frame handed to a native handler is recycled; handlers
// must not retain it (or its Args slice) past their return, which none of
// a debugger's synchronous command handlers have reason to do.
func (d *Debugger) CallValue(name string, args []minic.Value) (minic.Value, error) {
	vm := d.proc.VM
	if vm.Prog.FuncIndex(name) >= 0 {
		return vm.CallFunctionGuarded(name, args, d.evalGuard)
	}
	if nat, _, ok := vm.Prog.Natives.Lookup(name); ok {
		nc := d.getNatCall()
		nc.VM, nc.Thread, nc.Args = vm, d.SelectedThread(), args
		v, err := nat.Handler(nc)
		nc.VM, nc.Thread, nc.Args = nil, nil, nil
		d.natFree = append(d.natFree, nc)
		return v, err
	}
	return minic.NullVal(), fmt.Errorf("no symbol %q in current context", name)
}

// getNatCall pops a recycled NativeCall frame, or allocates the first
// few. Natives can nest (a native's handler may evaluate expressions
// that call back in), hence a freelist rather than a single slot.
func (d *Debugger) getNatCall() *minic.NativeCall {
	if n := len(d.natFree); n > 0 {
		nc := d.natFree[n-1]
		d.natFree = d.natFree[:n-1]
		return nc
	}
	return &minic.NativeCall{}
}
