package debugger

// Process record and reverse execution (GDB's `record` / `reverse-step` /
// `reverse-continue`). These are stock debugger features — GDB has had
// them since 7.0 — so they live here, not in any D2X layer; D2X's
// reverse-xbt macro composes them through `call`/`eval` exactly like the
// forward macros. The machinery stays behind the small Recorder surface
// (Hanson's portable-debugger lesson): the debugger never sees snapshots
// or instruction logs, only positions it can scan and restore.

import (
	"fmt"
	"strconv"
	"strings"

	"d2x/internal/dwarfish"
	"d2x/internal/minic"
	"d2x/internal/minic/journal"
)

// Recorder is what the debugger needs from an execution recorder: a
// position counter, a scannable instruction log, and exact restoration
// to any logged position. Implementations record scheduled debuggee
// instructions only; synthetic calls the debugger injects at a stop are
// not history.
type Recorder interface {
	// Step returns the current position (instructions recorded between
	// attach and the debuggee's present state).
	Step() int64
	// At reports where execution stood just before logged instruction i
	// ran. ok is false outside [0, Step()).
	At(i int64) (thread, funcIndex, pc, depth int, ok bool)
	// RestoreTo rewinds the debuggee to its exact state at position
	// step, discarding later history (forward execution regenerates it
	// deterministically).
	RestoreTo(step int64) error
	// Checkpoint forces a full snapshot at the current position, so a
	// mutation applied at this stop survives replays across it.
	Checkpoint()
	// Active reports whether recording is still on.
	Active() bool
	// Stop ends recording and releases all history.
	Stop()
	// Info returns telemetry for `info record`: instructions logged,
	// snapshots held, and bytes of instruction log.
	Info() (steps int64, snapshots int, bytes int64)
}

// journalRecorder adapts the VM execution journal to the Recorder
// surface.
type journalRecorder struct{ j *journal.Journal }

// NewJournalRecorder wraps a VM execution journal as a Recorder. Layers
// that keep the journal handle elsewhere (the D2X session service stores
// it on per-VM state) attach the journal themselves and hand the wrapped
// recorder to the debugger through SetRecorderFactory.
func NewJournalRecorder(j *journal.Journal) Recorder { return journalRecorder{j} }

func (r journalRecorder) Step() int64 { return r.j.Step() }

func (r journalRecorder) At(i int64) (int, int, int, int, bool) {
	rec, ok := r.j.At(i)
	return rec.Thread, rec.FuncIndex, rec.PC, rec.Depth, ok
}

func (r journalRecorder) RestoreTo(step int64) error { return r.j.RestoreTo(step) }
func (r journalRecorder) Checkpoint()                { r.j.Checkpoint() }
func (r journalRecorder) Active() bool               { return r.j.Active() }
func (r journalRecorder) Stop()                      { r.j.Stop() }

func (r journalRecorder) Info() (int64, int, int64) {
	s := r.j.Stats()
	return s.Steps, s.Snapshots, s.RecordBytes
}

// SetRecorderFactory overrides how `record` builds a recorder for the
// debuggee. The default attaches a fresh VM execution journal; the D2X
// session layer installs a factory that parks the journal handle on the
// per-VM session state so recording survives session eviction.
func (d *Debugger) SetRecorderFactory(f func(*minic.VM) (Recorder, error)) {
	d.recorderFactory = f
}

// ActiveRecorder returns the live recorder, or nil when recording is off.
func (d *Debugger) ActiveRecorder() Recorder {
	if d.recorder != nil && d.recorder.Active() {
		return d.recorder
	}
	return nil
}

// StartRecording turns on process record at the current stop. The base
// snapshot is taken here, so position 0 is this stop — module
// initialisers and instructions already executed are not in history.
func (d *Debugger) StartRecording() error {
	if !d.started {
		return fmt.Errorf("the program is not being run")
	}
	if d.ActiveRecorder() != nil {
		return fmt.Errorf("process record is already started")
	}
	factory := d.recorderFactory
	if factory == nil {
		factory = func(vm *minic.VM) (Recorder, error) {
			j, err := journal.Attach(vm, journal.Options{})
			if err != nil {
				return nil, err
			}
			return NewJournalRecorder(j), nil
		}
	}
	rec, err := factory(d.proc.VM)
	if err != nil {
		return err
	}
	d.recorder = rec
	return nil
}

// StopRecording turns process record off and deletes the history.
func (d *Debugger) StopRecording() error {
	if d.ActiveRecorder() == nil {
		return fmt.Errorf("process record is not started")
	}
	d.recorder.Stop()
	d.recorder = nil
	return nil
}

// requireRecorder gates the reverse commands. Unlike checkRunning it
// accepts an exited program: with history recorded, running backwards
// out of the exit is exactly what reverse execution is for.
func (d *Debugger) requireRecorder() (Recorder, error) {
	if !d.started {
		return nil, fmt.Errorf("the program is not being run")
	}
	rec := d.ActiveRecorder()
	if rec == nil {
		return nil, fmt.Errorf(`process record is not started (use "record")`)
	}
	return rec, nil
}

// stmtStartAt reports whether (funcIndex, pc) is a statement boundary.
func (d *Debugger) stmtStartAt(funcIndex, pc int) bool {
	code := d.proc.VM.Prog.Code
	if funcIndex < 0 || funcIndex >= len(code) {
		return false
	}
	instrs := code[funcIndex].Instrs
	return pc >= 0 && pc < len(instrs) && instrs[pc].StmtStart
}

// reverseStopAt restores position step and rebuilds the debugger's stop
// state there. Thread and frame pointers from before the rewind are
// stale afterwards; everything is re-resolved by ID.
func (d *Debugger) reverseStopAt(rec Recorder, step int64, reason StopReason, bp *Breakpoint) (Stop, error) {
	if err := rec.RestoreTo(step); err != nil {
		return Stop{}, err
	}
	vm := d.proc.VM
	t := vm.NextThread()
	if t == nil || t.Top() == nil {
		// Position 0 of an already-finished recording, or a stop on a
		// thread mid-teardown: report it like an exit.
		d.skipValid = false
		d.lastStop = Stop{Reason: StopExited}
		return d.lastStop, nil
	}
	top := t.Top()
	d.stopAt(t, reason, bp, dwarfish.Addr{FuncIndex: top.FuncIndex, PC: top.PC})
	return d.lastStop, nil
}

// ReverseStep runs the selected thread backwards to the previous source
// line (GDB `reverse-step`): the most recent logged statement boundary
// of that thread whose line or frame depth differs from the current one.
func (d *Debugger) ReverseStep() (Stop, error) {
	rec, err := d.requireRecorder()
	if err != nil {
		return Stop{}, err
	}
	t := d.SelectedThread()
	if t == nil {
		return Stop{}, fmt.Errorf("no thread selected")
	}
	startDepth := len(t.Frames)
	startLine := -1
	if t.Top() != nil {
		if _, line, ok := d.lineAt(0); ok {
			startLine = line
		}
	}
	target := int64(-1)
	for i := rec.Step() - 1; i >= 0; i-- {
		th, fn, pc, depth, ok := rec.At(i)
		if !ok {
			break
		}
		if th != t.ID || !d.stmtStartAt(fn, pc) {
			continue
		}
		_, line, ok := d.proc.Info.LineFor(dwarfish.Addr{FuncIndex: fn, PC: pc})
		if !ok {
			continue
		}
		if depth != startDepth || line != startLine {
			target = i
			break
		}
	}
	if target < 0 {
		d.printf("No more reverse-execution history.\n")
		return d.reverseStopAt(rec, 0, StopStep, nil)
	}
	return d.reverseStopAt(rec, target, StopStep, nil)
}

// ReverseContinue runs backwards to the most recent breakpoint hit (GDB
// `reverse-continue`), honouring breakpoint conditions by evaluating
// them in the restored state. With no breakpoint in history it rewinds
// to the beginning of the recording.
func (d *Debugger) ReverseContinue() (Stop, error) {
	rec, err := d.requireRecorder()
	if err != nil {
		return Stop{}, err
	}
	vm := d.proc.VM
	scanFrom := rec.Step()
	for {
		var (
			target int64 = -1
			addr   dwarfish.Addr
			thID   int
		)
		for i := scanFrom - 1; i >= 0; i-- {
			th, fn, pc, _, ok := rec.At(i)
			if !ok {
				break
			}
			if !d.stmtStartAt(fn, pc) {
				continue
			}
			a := dwarfish.Addr{FuncIndex: fn, PC: pc}
			if d.breakpointAt(a) != nil {
				target, addr, thID = i, a, th
				break
			}
		}
		if target < 0 {
			d.printf("No more reverse-execution history.\n")
			return d.reverseStopAt(rec, 0, StopStep, nil)
		}
		if err := rec.RestoreTo(target); err != nil {
			return Stop{}, err
		}
		bp := d.breakpointAt(addr)
		t := vm.ThreadByID(thID)
		if bp == nil || t == nil {
			scanFrom = target
			continue
		}
		if bp.Cond != "" && !d.condTrue(t, bp.Cond) {
			scanFrom = target
			continue
		}
		bp.Hits++
		d.stopAt(t, StopBreakpoint, bp, addr)
		return d.lastStop, nil
	}
}

// RecordGoto rewinds (or replays forward, within history) to an absolute
// recorded position (GDB `record goto`).
func (d *Debugger) RecordGoto(step int64) (Stop, error) {
	rec, err := d.requireRecorder()
	if err != nil {
		return Stop{}, err
	}
	if step < 0 || step > rec.Step() {
		return Stop{}, fmt.Errorf("step %d is outside recorded history [0, %d]", step, rec.Step())
	}
	return d.reverseStopAt(rec, step, StopStep, nil)
}

// cmdRecord dispatches `record`, `record stop` and `record goto N`.
func (d *Debugger) cmdRecord(rest string) error {
	what, arg := splitCommand(rest)
	switch what {
	case "":
		if err := d.StartRecording(); err != nil {
			return err
		}
		d.printf("Process record is started.\n")
		return nil
	case "stop":
		if err := d.StopRecording(); err != nil {
			return err
		}
		d.printf("Process record is stopped and all execution logs are deleted.\n")
		return nil
	case "goto":
		step, err := strconv.ParseInt(strings.TrimSpace(arg), 10, 64)
		if err != nil {
			return fmt.Errorf(`usage: record goto <step>`)
		}
		stop, err := d.RecordGoto(step)
		if err != nil {
			return err
		}
		d.reportStop(stop)
		return nil
	}
	return fmt.Errorf(`undefined record command: %q (try "record", "record stop", "record goto N")`, what)
}

// infoRecord prints `info record`.
func (d *Debugger) infoRecord() {
	rec := d.ActiveRecorder()
	if rec == nil {
		d.printf("No recording is currently active.\n")
		return
	}
	steps, snaps, bytes := rec.Info()
	d.printf("Active record target: execution journal\n")
	d.printf("Instruction log: %d instructions (%d KiB), %d snapshots.\n", steps, bytes/1024, snaps)
}
