// Package debugger implements a GDB-style source-level debugger for mini-C
// programs. It plays the role GDB/LLDB play in the paper: a stock debugger
// that knows nothing about any DSL. It maps VM state to generated source
// using only the serialised dwarfish debug info, supports breakpoints,
// stepping, frame navigation and expression printing — and, crucially, the
// two features D2X builds everything on:
//
//   - `call f(args...)`: invoke a function linked into the debuggee while
//     execution is paused (paper §4.2), and
//   - `eval "fmt", args...`: format a string (whose arguments may be calls
//     into the debuggee) and execute the result as debugger commands,
//     which is how D2X's xbreak drives breakpoint insertion.
//
// The package intentionally has no dependency on any D2X package; an
// architecture test enforces this, because the paper's claim is precisely
// that the debugger needs no modification.
package debugger

import (
	"fmt"
	"io"
	"strings"

	"d2x/internal/dwarfish"
	"d2x/internal/minic"
)

// Process is the debuggee: a loaded program plus its debug info. The
// debugger receives only what a real one would: the "binary" (compiled
// program), its debug info blob, and the ability to run it.
type Process struct {
	VM   *minic.VM
	Info *dwarfish.Info
}

// NewProcess loads a program under the debugger. debugBlob is the encoded
// dwarfish info ("the binary was compiled with -g"); pass the output of
// dwarfish.Build(...).Encode().
func NewProcess(prog *minic.Program, debugBlob []byte, output io.Writer) (*Process, error) {
	info, err := dwarfish.Decode(debugBlob)
	if err != nil {
		return nil, fmt.Errorf("debugger: bad debug info: %w", err)
	}
	return &Process{VM: minic.NewVM(prog, output), Info: info}, nil
}

// Breakpoint is one user breakpoint, expanded to its machine sites. Cond,
// when non-empty, is an expression evaluated at the stop site; the
// breakpoint only fires when it is true.
type Breakpoint struct {
	ID      int
	Spec    string
	Cond    string
	Sites   []dwarfish.BreakpointSite
	Enabled bool
	Hits    int
}

// StopReason says why execution stopped.
type StopReason int

const (
	StopNone StopReason = iota
	StopBreakpoint
	StopWatchpoint
	StopStep
	StopFault
	StopExited
)

func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopBreakpoint:
		return "breakpoint"
	case StopWatchpoint:
		return "watchpoint"
	case StopStep:
		return "step"
	case StopFault:
		return "fault"
	case StopExited:
		return "exited"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Stop describes the most recent halt.
type Stop struct {
	Reason     StopReason
	Breakpoint *Breakpoint
	Watch      *Watchpoint
	WatchOld   minic.Value
	WatchNew   minic.Value
	Thread     *minic.Thread
	Fault      error
}

// Debugger drives one Process.
type Debugger struct {
	proc *Process
	out  io.Writer

	bps    []*Breakpoint
	nextBP int

	started  bool
	lastStop Stop

	selThreadID int
	selFrame    int // 0 = innermost

	valueCounter int // GDB's $1, $2, ... history numbering

	watchpoints []*Watchpoint
	displays    []displayEntry
	displayCnt  int

	macros map[string]*Macro

	// skip suppresses re-triggering the breakpoint we are stopped at when
	// resuming, matching GDB semantics.
	skipThread int
	skipAddr   dwarfish.Addr
	skipValid  bool

	// maxSteps bounds one resume, so a runaway debuggee cannot hang the
	// host test suite. 0 means the default of 500M instructions.
	maxSteps int64

	// evalGuard, when set, constrains debuggee function calls made while
	// evaluating expressions (CallValue applies it). The debugger sets it
	// around *implicit* evaluations — watchpoint checks and auto-display
	// refreshes — where a misbehaving expression must not mutate the
	// debuggee or hang the stop path. Explicit user `call`/`print` stay
	// unguarded: the user asked for the side effects.
	evalGuard *minic.Guard

	// exprCache memoises lexed token slices and ns::fn name manglings.
	// Macro-driven command streams evaluate the same handful of call
	// expressions on every command, so without these the lexer's token
	// slice and the mangler's rewrite dominate steady-state dispatch
	// cost. Both maps are bounded (cleared wholesale when full — the
	// real working set is a few entries) and hold immutable values, and
	// the debugger executes commands one at a time, so no locking.
	exprCache   map[string][]exprToken
	mangleCache map[string]string

	// argFree and natFree recycle the argument slices and native-call
	// frames of debuggee calls. Calls nest (f(g(x)) holds two argument
	// lists at once), hence freelists rather than single slots; an inner
	// call completes before the outer one is issued, so a popped entry
	// is never still in use when it is reused.
	argFree []([]minic.Value)
	natFree []*minic.NativeCall
	strFree [][]string
	bufFree [][]byte

	// bpFree recycles Breakpoint objects through delete/set cycles. The
	// D2X xbreak/xdel protocol churns low-level breakpoints on every DSL
	// breakpoint operation (one per generated line), so without a
	// freelist every cycle re-allocates the whole set.
	bpFree []*Breakpoint

	// recorder is the live process-record target (nil when recording is
	// off); recorderFactory, when set, overrides how `record` builds one
	// (the D2X session layer parks the journal handle on per-VM state).
	recorder        Recorder
	recorderFactory func(*minic.VM) (Recorder, error)

	closed     bool
	closeHooks []func()
}

// New attaches a debugger to a process, writing all user-visible output
// (the GDB transcript) to out.
func New(proc *Process, out io.Writer) *Debugger {
	if out == nil {
		out = io.Discard
	}
	return &Debugger{
		proc:        proc,
		out:         out,
		nextBP:      1,
		selThreadID: -1,
		macros:      map[string]*Macro{},
	}
}

// Out returns the transcript writer (macro expansion writes through it).
func (d *Debugger) Out() io.Writer { return d.out }

// OnClose registers a hook run (once) when the session is closed. The
// layer that attaches runtime services to a session uses this to release
// per-session state; the debugger itself stays ignorant of what they are.
func (d *Debugger) OnClose(fn func()) {
	d.closeHooks = append(d.closeHooks, fn)
}

// Close ends the debug session: registered hooks run in registration
// order and further Execute calls fail. Idempotent.
func (d *Debugger) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for _, fn := range d.closeHooks {
		fn()
	}
	d.closeHooks = nil
}

// Closed reports whether the session has been closed.
func (d *Debugger) Closed() bool { return d.closed }

// Process returns the debuggee.
func (d *Debugger) Process() *Process { return d.proc }

// LastStop reports the most recent stop.
func (d *Debugger) LastStop() Stop { return d.lastStop }

func (d *Debugger) printf(format string, args ...any) {
	fmt.Fprintf(d.out, format, args...)
}

// ---- Breakpoints ----

// SetBreakpoint resolves a location spec — "file:line", ":line", a bare
// line number, or a function name, optionally followed by "if EXPR" — and
// installs a breakpoint on every matching statement site.
func (d *Debugger) SetBreakpoint(spec string) (*Breakpoint, error) {
	cond := ""
	if i := strings.Index(spec, " if "); i >= 0 {
		cond = strings.TrimSpace(spec[i+4:])
		spec = strings.TrimSpace(spec[:i])
	}
	sites, err := d.resolveSpec(spec)
	if err != nil {
		return nil, err
	}
	bp := d.getBP()
	*bp = Breakpoint{ID: d.nextBP, Spec: spec, Cond: cond, Sites: sites, Enabled: true}
	d.nextBP++
	d.bps = append(d.bps, bp)
	return bp, nil
}

// getBP pops a recycled Breakpoint (or allocates the first time).
func (d *Debugger) getBP() *Breakpoint {
	if n := len(d.bpFree); n > 0 {
		bp := d.bpFree[n-1]
		d.bpFree[n-1] = nil
		d.bpFree = d.bpFree[:n-1]
		return bp
	}
	return new(Breakpoint)
}

// putBP parks a deleted Breakpoint for reuse. The last stop may still
// reference the breakpoint it stopped at (`info program` style displays
// read it after deletion), so that one is left to the GC rather than
// recycled into a live object with a different identity.
func (d *Debugger) putBP(bp *Breakpoint) {
	if bp == d.lastStop.Breakpoint {
		return
	}
	d.bpFree = append(d.bpFree, bp)
}

func (d *Debugger) resolveSpec(spec string) ([]dwarfish.BreakpointSite, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("empty breakpoint location")
	}
	lineSpec := spec
	if i := strings.LastIndex(spec, ":"); i >= 0 {
		file := spec[:i]
		if file != "" && file != d.proc.Info.File {
			return nil, fmt.Errorf("no source file named %q (program source is %q)", file, d.proc.Info.File)
		}
		lineSpec = spec[i+1:]
	}
	if line, ok := parseLeadingInt(lineSpec); ok && line > 0 {
		sites := d.proc.Info.SitesForLine(line)
		if len(sites) == 0 {
			return nil, fmt.Errorf("no code at line %d", line)
		}
		return sites, nil
	}
	sites := d.proc.Info.SitesForFunc(spec)
	if len(sites) == 0 {
		return nil, fmt.Errorf("function %q not defined", spec)
	}
	return sites, nil
}

// parseLeadingInt parses an optionally signed decimal prefix, the subset
// of Sscanf("%d") semantics resolveSpec relies on, without fmt's scan
// state. Trailing non-digits are ignored, as Sscanf's were.
func parseLeadingInt(s string) (int, bool) {
	i, neg := 0, false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	n, start := 0, i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		n = n*10 + int(s[i]-'0')
		i++
	}
	if i == start {
		return 0, false
	}
	if neg {
		n = -n
	}
	return n, true
}

// DeleteBreakpoint removes the breakpoint with the given ID.
func (d *Debugger) DeleteBreakpoint(id int) error {
	for i, bp := range d.bps {
		if bp.ID == id {
			d.bps = append(d.bps[:i], d.bps[i+1:]...)
			d.putBP(bp)
			return nil
		}
	}
	return fmt.Errorf("no breakpoint number %d", id)
}

// Breakpoints lists current breakpoints.
func (d *Debugger) Breakpoints() []*Breakpoint { return d.bps }

func (d *Debugger) breakpointAt(addr dwarfish.Addr) *Breakpoint {
	for _, bp := range d.bps {
		if !bp.Enabled {
			continue
		}
		for _, s := range bp.Sites {
			if s.Addr == addr {
				return bp
			}
		}
	}
	return nil
}

// ---- Thread and frame selection ----

// SelectedThread returns the thread the debugger is focused on.
func (d *Debugger) SelectedThread() *minic.Thread {
	if t := d.proc.VM.ThreadByID(d.selThreadID); t != nil {
		return t
	}
	// Fall back to the first live thread.
	for _, t := range d.proc.VM.Threads() {
		if t.State == minic.ThreadReady || t.State == minic.ThreadFaulted || t.State == minic.ThreadWaiting {
			return t
		}
	}
	if ts := d.proc.VM.Threads(); len(ts) > 0 {
		return ts[0]
	}
	return nil
}

// SelectThread switches focus to the thread with the given ID.
func (d *Debugger) SelectThread(id int) error {
	if d.proc.VM.ThreadByID(id) == nil {
		return fmt.Errorf("no thread %d", id)
	}
	d.selThreadID = id
	d.selFrame = 0
	return nil
}

// frames returns the selected thread's call stack innermost-first, the
// order backtraces display. It allocates a reversed copy; hot paths that
// need a single frame use frameAt instead.
func (d *Debugger) frames() []*minic.Frame {
	t := d.SelectedThread()
	if t == nil {
		return nil
	}
	fs := t.Frames
	out := make([]*minic.Frame, len(fs))
	for i := range fs {
		out[i] = fs[len(fs)-1-i]
	}
	return out
}

// frameCount returns the depth of the selected thread's call stack.
func (d *Debugger) frameCount() int {
	t := d.SelectedThread()
	if t == nil {
		return 0
	}
	return len(t.Frames)
}

// frameAt returns frame n of the selected thread, innermost-first —
// frames()[n] without materialising the reversed slice. The register
// meta-variables ($rip, $rsp) every D2X command evaluates resolve through
// here, so the command hot path does not copy the stack per lookup.
func (d *Debugger) frameAt(n int) *minic.Frame {
	t := d.SelectedThread()
	if t == nil {
		return nil
	}
	fs := t.Frames
	if n < 0 || n >= len(fs) {
		return nil
	}
	return fs[len(fs)-1-n]
}

// SelectedFrame returns the currently selected frame (nil before run).
func (d *Debugger) SelectedFrame() *minic.Frame {
	if f := d.frameAt(d.selFrame); f != nil {
		return f
	}
	return d.frameAt(0)
}

// SelectFrame chooses frame n of the selected thread (0 = innermost).
func (d *Debugger) SelectFrame(n int) error {
	if n < 0 || n >= d.frameCount() {
		return fmt.Errorf("no frame %d (stack has %d frames)", n, d.frameCount())
	}
	d.selFrame = n
	return nil
}

// FrameAddr returns the code address of a frame: for the innermost frame
// the instruction about to execute; for outer frames the call site (PC-1,
// like a return address).
func (d *Debugger) FrameAddr(frameNo int) (dwarfish.Addr, bool) {
	f := d.frameAt(frameNo)
	if f == nil {
		return dwarfish.Addr{}, false
	}
	pc := f.PC
	if frameNo > 0 && pc > 0 {
		pc-- // outer frames point at their pending call instruction
	}
	return dwarfish.Addr{FuncIndex: f.FuncIndex, PC: pc}, true
}

// RegisterRIP returns the $rip meta-variable of the selected frame: the
// encoded code address the D2X commands take as their first argument.
func (d *Debugger) RegisterRIP() (int64, bool) {
	a, ok := d.FrameAddr(d.selFrame)
	if !ok {
		return 0, false
	}
	return dwarfish.EncodeAddr(a), true
}

// RegisterRSP returns the $rsp meta-variable of the selected frame: the
// frame's unique ID, which plays the role of a stack pointer value.
func (d *Debugger) RegisterRSP() (int64, bool) {
	f := d.SelectedFrame()
	if f == nil {
		return 0, false
	}
	return int64(f.ID), true
}

// lineAt maps a frame to its current source file and line via debug info.
func (d *Debugger) lineAt(frameNo int) (string, int, bool) {
	a, ok := d.FrameAddr(frameNo)
	if !ok {
		return "", 0, false
	}
	return d.proc.Info.LineFor(a)
}
