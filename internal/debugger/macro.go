package debugger

import (
	"fmt"
	"strings"
)

// Macro is a user-defined command: a named sequence of command lines with
// $arg0..$arg9 placeholders, GDB's `define`. The D2X helper macros
// (paper §3.3, Table 3's 40-line component) are written in this form once
// per debugger and are entirely DSL-independent.
type Macro struct {
	Name string
	Body []string

	// compiled is the pre-parsed body, built once at DefineMacro: each
	// line's literal segments and $argN references, plus the line's
	// rendering with every argument empty. An invocation whose referenced
	// arguments are all empty — every zero-argument D2X helper macro —
	// executes its lines as pre-built strings, with no substitution work
	// and no allocation.
	compiled []macroLine
}

// macroSeg is one piece of a macro line: a literal, or an argument
// reference (arg >= 0).
type macroSeg struct {
	lit string
	arg int
}

// macroLine is one pre-parsed macro body line.
type macroLine struct {
	segs   []macroSeg
	static string // the line with every $argN replaced by ""
	maxArg int    // highest referenced argument index; -1 for a pure literal

	// lastSub memoizes the most recent argument substitution of this
	// line. A command loop re-issuing the same invocation (xbreak on one
	// spec, a scripted poll) renders identical bytes every time; reusing
	// the previous string spares the per-call allocation. Macros are
	// per-debugger and a debugger executes one command at a time, so the
	// memo needs no lock.
	lastSub string
}

// compile parses $arg0..$arg9 references out of every body line. The
// scan reproduces the substitution semantics of the original
// ReplaceAll loop: only a single digit follows $arg, so "$arg12" is
// argument 1 followed by the literal "2".
func (m *Macro) compile() {
	m.compiled = make([]macroLine, len(m.Body))
	for i, line := range m.Body {
		m.compiled[i] = compileMacroLine(line)
	}
}

func compileMacroLine(line string) macroLine {
	var segs []macroSeg
	maxArg := -1
	start, i := 0, 0
	for i+4 < len(line) {
		if line[i] == '$' && line[i+1:i+4] == "arg" && line[i+4] >= '0' && line[i+4] <= '9' {
			if i > start {
				segs = append(segs, macroSeg{lit: line[start:i], arg: -1})
			}
			n := int(line[i+4] - '0')
			segs = append(segs, macroSeg{arg: n})
			if n > maxArg {
				maxArg = n
			}
			i += 5
			start = i
			continue
		}
		i++
	}
	if start < len(line) {
		segs = append(segs, macroSeg{lit: line[start:], arg: -1})
	}
	var b strings.Builder
	for _, s := range segs {
		if s.arg < 0 {
			b.WriteString(s.lit)
		}
	}
	return macroLine{segs: segs, static: b.String(), maxArg: maxArg}
}

// DefineMacro installs (or replaces) a macro, pre-compiling its body.
func (d *Debugger) DefineMacro(m *Macro) {
	m.compile()
	d.macros[m.Name] = m
}

// Macros returns the installed macro table.
func (d *Debugger) Macros() map[string]*Macro { return d.macros }

// LoadMacros parses a macro file in GDB's define/end syntax:
//
//	define xbt
//	  call d2x_runtime::command_xbt($rip, $rsp)
//	end
//
// Lines outside define/end blocks must be blank or comments (#).
func (d *Debugger) LoadMacros(text string) error {
	var cur *Macro
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "define "):
			if cur != nil {
				return fmt.Errorf("macro file line %d: nested define", i+1)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "define "))
			if name == "" {
				return fmt.Errorf("macro file line %d: define requires a name", i+1)
			}
			cur = &Macro{Name: name}
		case line == "end":
			if cur == nil {
				return fmt.Errorf("macro file line %d: end without define", i+1)
			}
			d.DefineMacro(cur)
			cur = nil
		default:
			if cur == nil {
				return fmt.Errorf("macro file line %d: command outside define block", i+1)
			}
			cur.Body = append(cur.Body, line)
		}
	}
	if cur != nil {
		return fmt.Errorf("macro file: unterminated define %q", cur.Name)
	}
	return nil
}

// runMacro substitutes arguments into the pre-compiled body and executes
// it. Lines whose referenced arguments are all absent or empty execute as
// the pre-built static string — no substitution, no allocation — which
// covers every zero-argument helper macro on the hot command path.
func (d *Debugger) runMacro(m *Macro, args []string) error {
	if m.compiled == nil {
		// Macro built by hand rather than through DefineMacro.
		m.compile()
	}
	scratch := d.getBuf()
	defer func() { d.putBuf(scratch) }()
	for li := range m.compiled {
		cl := &m.compiled[li]
		line := cl.static
		if cl.maxArg >= 0 && anyArgSet(cl.segs, args) {
			scratch = scratch[:0]
			for _, s := range cl.segs {
				if s.arg < 0 {
					scratch = append(scratch, s.lit...)
				} else if s.arg < len(args) {
					scratch = append(scratch, args[s.arg]...)
				}
			}
			// The == below compiles to a byte compare, no conversion
			// allocation; only a changed substitution pays string().
			if cl.lastSub == string(scratch) {
				line = cl.lastSub
			} else {
				line = string(scratch)
				cl.lastSub = line
			}
		}
		if err := d.Execute(line); err != nil {
			return fmt.Errorf("in macro %s: %w", m.Name, err)
		}
	}
	return nil
}

// anyArgSet reports whether any argument referenced by the line's
// segments has a non-empty value, i.e. whether substitution would change
// the static rendering.
func anyArgSet(segs []macroSeg, args []string) bool {
	for _, s := range segs {
		if s.arg >= 0 && s.arg < len(args) && args[s.arg] != "" {
			return true
		}
	}
	return false
}
