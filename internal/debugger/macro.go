package debugger

import (
	"fmt"
	"strings"
)

// Macro is a user-defined command: a named sequence of command lines with
// $arg0..$arg9 placeholders, GDB's `define`. The D2X helper macros
// (paper §3.3, Table 3's 40-line component) are written in this form once
// per debugger and are entirely DSL-independent.
type Macro struct {
	Name string
	Body []string
}

// DefineMacro installs (or replaces) a macro.
func (d *Debugger) DefineMacro(m *Macro) {
	d.macros[m.Name] = m
}

// Macros returns the installed macro table.
func (d *Debugger) Macros() map[string]*Macro { return d.macros }

// LoadMacros parses a macro file in GDB's define/end syntax:
//
//	define xbt
//	  call d2x_runtime::command_xbt($rip, $rsp)
//	end
//
// Lines outside define/end blocks must be blank or comments (#).
func (d *Debugger) LoadMacros(text string) error {
	var cur *Macro
	for i, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
			continue
		case strings.HasPrefix(line, "define "):
			if cur != nil {
				return fmt.Errorf("macro file line %d: nested define", i+1)
			}
			name := strings.TrimSpace(strings.TrimPrefix(line, "define "))
			if name == "" {
				return fmt.Errorf("macro file line %d: define requires a name", i+1)
			}
			cur = &Macro{Name: name}
		case line == "end":
			if cur == nil {
				return fmt.Errorf("macro file line %d: end without define", i+1)
			}
			d.DefineMacro(cur)
			cur = nil
		default:
			if cur == nil {
				return fmt.Errorf("macro file line %d: command outside define block", i+1)
			}
			cur.Body = append(cur.Body, line)
		}
	}
	if cur != nil {
		return fmt.Errorf("macro file: unterminated define %q", cur.Name)
	}
	return nil
}

// runMacro substitutes arguments into the body and executes it.
func (d *Debugger) runMacro(m *Macro, args []string) error {
	for _, tmpl := range m.Body {
		line := tmpl
		for i := 9; i >= 0; i-- {
			val := ""
			if i < len(args) {
				val = args[i]
			}
			line = strings.ReplaceAll(line, fmt.Sprintf("$arg%d", i), val)
		}
		if err := d.Execute(line); err != nil {
			return fmt.Errorf("in macro %s: %w", m.Name, err)
		}
	}
	return nil
}
