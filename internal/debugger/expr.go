package debugger

import (
	"fmt"
	"strconv"
	"strings"

	"d2x/internal/minic"
)

// This file implements the debugger's expression language, used by print,
// call, set, and eval argument lists. It covers what a debugger needs:
// literals, locals/globals, field and index access, dereference and
// address-of, register meta-variables ($rip, $rsp, $pc), and calls into
// the debuggee.

type exprToken struct {
	kind string // "ident", "int", "float", "string", "reg", or punctuation
	text string
}

// punctBytes lists the single-byte tokens; punctKinds holds their
// pre-made kind strings, index-aligned, so lexing punctuation never
// converts (and so never allocates) a one-byte string per token.
const punctBytes = "()[].,*&-!+/%<>"

var punctKinds = [...]string{"(", ")", "[", "]", ".", ",", "*", "&", "-", "!", "+", "/", "%", "<", ">"}

func lexExpr(src string) ([]exprToken, error) {
	// A D2X command expression runs 10-20 tokens; starting at capacity
	// 16 turns the append ladder into one allocation for almost every
	// expression. Misses of the expr cache lex on the command path, so
	// the constant matters there.
	toks := make([]exprToken, 0, 16)
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '$':
			j := i + 1
			for j < len(src) && (isWordByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("lone $ in expression")
			}
			toks = append(toks, exprToken{kind: "reg", text: src[i+1 : j]})
			i = j
		case isWordByte(c):
			j := i
			for j < len(src) && (isWordByte(src[j]) || src[j] >= '0' && src[j] <= '9') {
				j++
			}
			toks = append(toks, exprToken{kind: "ident", text: src[i:j]})
			i = j
		case c >= '0' && c <= '9':
			j := i
			isFloat := false
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				if src[j] == '.' {
					isFloat = true
				}
				j++
			}
			kind := "int"
			if isFloat {
				kind = "float"
			}
			toks = append(toks, exprToken{kind: kind, text: src[i:j]})
			i = j
		case c == '"':
			// Escape-free strings — every string a D2X macro passes
			// through — are sliced straight out of src; only an escape
			// forces a rebuilt copy.
			j := i + 1
			hasEscape := false
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					hasEscape = true
					j++
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string in expression")
			}
			text := src[i+1 : j]
			if hasEscape {
				var b strings.Builder
				b.Grow(j - i - 1)
				for k := i + 1; k < j; k++ {
					if src[k] == '\\' && k+1 < j {
						k++
						switch src[k] {
						case 'n':
							b.WriteByte('\n')
						case 't':
							b.WriteByte('\t')
						case '"':
							b.WriteByte('"')
						case '\\':
							b.WriteByte('\\')
						default:
							b.WriteByte(src[k])
						}
					} else {
						b.WriteByte(src[k])
					}
				}
				text = b.String()
			}
			toks = append(toks, exprToken{kind: "string", text: text})
			i = j + 1
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			toks = append(toks, exprToken{kind: "->"})
			i += 2
		case c == '=' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, exprToken{kind: "=="})
			i += 2
		case c == '!' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, exprToken{kind: "!="})
			i += 2
		case c == '<' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, exprToken{kind: "<="})
			i += 2
		case c == '>' && i+1 < len(src) && src[i+1] == '=':
			toks = append(toks, exprToken{kind: ">="})
			i += 2
		case c == '&' && i+1 < len(src) && src[i+1] == '&':
			toks = append(toks, exprToken{kind: "&&"})
			i += 2
		case c == '|' && i+1 < len(src) && src[i+1] == '|':
			toks = append(toks, exprToken{kind: "||"})
			i += 2
		default:
			k := strings.IndexByte(punctBytes, c)
			if k < 0 {
				return nil, fmt.Errorf("unexpected character %q in expression", string(c))
			}
			toks = append(toks, exprToken{kind: punctKinds[k]})
			i++
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// result pairs an evaluated value with, when the expression designates a
// storage location, the cell backing it (for & and set).
type result struct {
	val  minic.Value
	cell *minic.Cell
}

type exprEval struct {
	d    *Debugger
	toks []exprToken
	pos  int
}

// EvalExpr evaluates a debugger expression against the selected frame.
func (d *Debugger) EvalExpr(src string) (minic.Value, error) {
	r, err := d.evalResult(src)
	if err != nil {
		return minic.NullVal(), err
	}
	return r.val, nil
}

// exprCacheMax bounds the lexed-token and mangle caches. The working set
// of a command stream is a handful of macro-body expressions; when a
// pathological stream of distinct expressions fills the map, it is
// cleared wholesale rather than evicted piecemeal.
const exprCacheMax = 256

// lexCached returns the token slice for src, memoised. Token slices are
// read-only after lexing (the evaluator only indexes into them), so
// sharing one slice across evaluations is safe.
func (d *Debugger) lexCached(src string) ([]exprToken, error) {
	if toks, ok := d.exprCache[src]; ok {
		return toks, nil
	}
	toks, err := lexExpr(src)
	if err != nil {
		return nil, err
	}
	if d.exprCache == nil {
		d.exprCache = make(map[string][]exprToken)
	} else if len(d.exprCache) >= exprCacheMax {
		clear(d.exprCache)
	}
	d.exprCache[src] = toks
	return toks, nil
}

func (d *Debugger) evalResult(src string) (result, error) {
	toks, err := d.lexCached(src)
	if err != nil {
		return result{}, err
	}
	ev := &exprEval{d: d, toks: toks}
	r, err := ev.expr()
	if err != nil {
		return result{}, err
	}
	if ev.pos != len(ev.toks) {
		return result{}, fmt.Errorf("junk at end of expression")
	}
	return r, nil
}

// SetVariable evaluates lvalueSrc to a storage location and stores the
// value of rhsSrc into it (GDB's `set var`).
func (d *Debugger) SetVariable(lvalueSrc, rhsSrc string) error {
	lhs, err := d.evalResult(lvalueSrc)
	if err != nil {
		return err
	}
	if lhs.cell == nil {
		return fmt.Errorf("left operand of assignment is not an lvalue")
	}
	rhs, err := d.EvalExpr(rhsSrc)
	if err != nil {
		return err
	}
	lhs.cell.V = rhs
	return nil
}

func (ev *exprEval) peek() exprToken {
	if ev.pos >= len(ev.toks) {
		return exprToken{kind: "eof"}
	}
	return ev.toks[ev.pos]
}

func (ev *exprEval) next() exprToken {
	t := ev.peek()
	if t.kind != "eof" {
		ev.pos++
	}
	return t
}

func (ev *exprEval) expect(kind string) error {
	if ev.peek().kind != kind {
		return fmt.Errorf("expected %q in expression", kind)
	}
	ev.pos++
	return nil
}

// Binary operator precedence for debugger expressions, matching mini-C.
func exprBinPrec(kind string) int {
	switch kind {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "!=":
		return 3
	case "<", "<=", ">", ">=":
		return 4
	case "+":
		return 5
	case "-":
		return 5
	case "*", "/", "%":
		return 6
	}
	return 0
}

func (ev *exprEval) expr() (result, error) {
	return ev.binary(1)
}

func (ev *exprEval) binary(minPrec int) (result, error) {
	lhs, err := ev.unary()
	if err != nil {
		return result{}, err
	}
	for {
		op := ev.peek().kind
		prec := exprBinPrec(op)
		if prec == 0 || prec < minPrec {
			return lhs, nil
		}
		// '*' and '-' and '&' are also unary; as infix operators they
		// only appear here, after a complete operand, so no ambiguity.
		ev.next()
		rhs, err := ev.binary(prec + 1)
		if err != nil {
			return result{}, err
		}
		v, err := applyBinary(op, lhs.val, rhs.val)
		if err != nil {
			return result{}, err
		}
		lhs = result{val: v}
	}
}

// applyBinary evaluates one binary operation on debugger values, with the
// same semantics the VM gives the operator.
func applyBinary(op string, x, y minic.Value) (minic.Value, error) {
	kindOf := map[string]minic.Kind{
		"+": minic.Plus, "-": minic.Minus, "*": minic.Star, "/": minic.Slash,
		"%": minic.Percent, "==": minic.Eq, "!=": minic.Neq, "<": minic.Lt,
		"<=": minic.Le, ">": minic.Gt, ">=": minic.Ge,
		"&&": minic.AndAnd, "||": minic.OrOr,
	}
	k, ok := kindOf[op]
	if !ok {
		return minic.Value{}, fmt.Errorf("unknown operator %q", op)
	}
	return minic.EvalBinary(k, x, y)
}

func (ev *exprEval) unary() (result, error) {
	switch ev.peek().kind {
	case "*":
		ev.next()
		r, err := ev.unary()
		if err != nil {
			return result{}, err
		}
		if r.val.Kind != minic.VPtr || r.val.Ptr == nil {
			return result{}, fmt.Errorf("attempt to dereference a non-pointer or null value")
		}
		return result{val: r.val.Ptr.V, cell: r.val.Ptr}, nil
	case "&":
		ev.next()
		r, err := ev.unary()
		if err != nil {
			return result{}, err
		}
		if r.cell == nil {
			return result{}, fmt.Errorf("attempt to take address of a value not in memory")
		}
		return result{val: minic.PtrVal(r.cell)}, nil
	case "-":
		ev.next()
		r, err := ev.unary()
		if err != nil {
			return result{}, err
		}
		switch r.val.Kind {
		case minic.VInt:
			return result{val: minic.IntVal(-r.val.I)}, nil
		case minic.VFloat:
			return result{val: minic.FloatVal(-r.val.F)}, nil
		}
		return result{}, fmt.Errorf("unary - applied to non-numeric value")
	case "!":
		ev.next()
		r, err := ev.unary()
		if err != nil {
			return result{}, err
		}
		return result{val: minic.BoolVal(!r.val.Bool())}, nil
	}
	return ev.postfix()
}

func (ev *exprEval) postfix() (result, error) {
	r, err := ev.primary()
	if err != nil {
		return result{}, err
	}
	for {
		switch ev.peek().kind {
		case "[":
			ev.next()
			idx, err := ev.expr()
			if err != nil {
				return result{}, err
			}
			if err := ev.expect("]"); err != nil {
				return result{}, err
			}
			if r.val.Kind != minic.VArr || r.val.Arr == nil {
				return result{}, fmt.Errorf("cannot subscript a non-array value")
			}
			if idx.val.Kind != minic.VInt {
				return result{}, fmt.Errorf("array index is not an integer")
			}
			i := idx.val.I
			if i < 0 || i >= int64(len(r.val.Arr.Cells)) {
				return result{}, fmt.Errorf("index %d out of range [0, %d)", i, len(r.val.Arr.Cells))
			}
			cell := &r.val.Arr.Cells[i]
			r = result{val: cell.V, cell: cell}
		case ".", "->":
			op := ev.next().kind
			name := ev.next()
			if name.kind != "ident" {
				return result{}, fmt.Errorf("expected field name after %q", op)
			}
			obj, err := structOf(r.val, op)
			if err != nil {
				return result{}, err
			}
			fi := obj.Def.FieldIndex(name.text)
			if fi < 0 {
				return result{}, fmt.Errorf("struct %s has no member named %q", obj.Def.Name, name.text)
			}
			cell := &obj.Fields[fi]
			r = result{val: cell.V, cell: cell}
		default:
			return r, nil
		}
	}
}

func structOf(v minic.Value, op string) (*minic.StructObj, error) {
	switch v.Kind {
	case minic.VStruct:
		if v.Struct == nil {
			return nil, fmt.Errorf("null struct")
		}
		return v.Struct, nil
	case minic.VPtr:
		if v.Ptr == nil {
			return nil, fmt.Errorf("null pointer")
		}
		if v.Ptr.V.Kind == minic.VStruct && v.Ptr.V.Struct != nil {
			return v.Ptr.V.Struct, nil
		}
	}
	return nil, fmt.Errorf("%q applied to a non-struct value", op)
}

func (ev *exprEval) primary() (result, error) {
	t := ev.next()
	switch t.kind {
	case "int":
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return result{}, fmt.Errorf("bad integer %q", t.text)
		}
		return result{val: minic.IntVal(v)}, nil
	case "float":
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return result{}, fmt.Errorf("bad float %q", t.text)
		}
		return result{val: minic.FloatVal(v)}, nil
	case "string":
		return result{val: minic.StrVal(t.text)}, nil
	case "reg":
		return ev.register(t.text)
	case "(":
		r, err := ev.expr()
		if err != nil {
			return result{}, err
		}
		if err := ev.expect(")"); err != nil {
			return result{}, err
		}
		return r, nil
	case "ident":
		switch t.text {
		case "true":
			return result{val: minic.BoolVal(true)}, nil
		case "false":
			return result{val: minic.BoolVal(false)}, nil
		case "null":
			return result{val: minic.NullVal()}, nil
		}
		if ev.peek().kind == "(" {
			return ev.call(t.text)
		}
		return ev.d.lookupSymbol(t.text)
	}
	return result{}, fmt.Errorf("unexpected %q in expression", t.kind)
}

func (ev *exprEval) register(name string) (result, error) {
	switch name {
	case "rip", "pc":
		v, ok := ev.d.RegisterRIP()
		if !ok {
			return result{}, fmt.Errorf("no frame selected")
		}
		return result{val: minic.IntVal(v)}, nil
	case "rsp", "sp":
		v, ok := ev.d.RegisterRSP()
		if !ok {
			return result{}, fmt.Errorf("no frame selected")
		}
		return result{val: minic.IntVal(v)}, nil
	}
	return result{}, fmt.Errorf("invalid register $%s", name)
}

// call evaluates a call into the debuggee. Names may use the C++-style
// qualified form ns::fn, which maps to ns_fn in the program/native tables
// (a flat namespace, like a linker's).
func (ev *exprEval) call(name string) (result, error) {
	if err := ev.expect("("); err != nil {
		return result{}, err
	}
	args := ev.d.getArgs()
	defer func() { ev.d.putArgs(args) }()
	for ev.peek().kind != ")" {
		a, err := ev.expr()
		if err != nil {
			return result{}, err
		}
		args = append(args, a.val)
		if ev.peek().kind == "," {
			ev.next()
		} else {
			break
		}
	}
	if err := ev.expect(")"); err != nil {
		return result{}, err
	}
	v, err := ev.d.CallValue(ev.d.mangled(name), args)
	if err != nil {
		return result{}, err
	}
	return result{val: v}, nil
}

// getArgs pops a reusable argument slice off the freelist (length 0,
// capacity retained from earlier calls).
func (d *Debugger) getArgs() []minic.Value {
	if n := len(d.argFree); n > 0 {
		a := d.argFree[n-1]
		d.argFree = d.argFree[:n-1]
		return a
	}
	return make([]minic.Value, 0, 4)
}

// putArgs returns an argument slice to the freelist, zeroing the used
// prefix so recycled slices do not pin debuggee values.
func (d *Debugger) putArgs(a []minic.Value) {
	for i := range a {
		a[i] = minic.Value{}
	}
	d.argFree = append(d.argFree, a[:0])
}

// mangled rewrites ns::fn to ns_fn so transcripts can use the paper's
// d2x_runtime::command_xbt spelling verbatim. Unqualified names pass
// through untouched; qualified rewrites are memoised, since the command
// macros call the same few runtime entry points forever.
func (d *Debugger) mangled(name string) string {
	if !strings.Contains(name, "::") {
		return name
	}
	if m, ok := d.mangleCache[name]; ok {
		return m
	}
	m := strings.ReplaceAll(name, "::", "_")
	if d.mangleCache == nil {
		d.mangleCache = make(map[string]string)
	} else if len(d.mangleCache) >= exprCacheMax {
		clear(d.mangleCache)
	}
	d.mangleCache[name] = m
	return m
}

// lookupSymbol resolves a bare identifier: selected-frame locals through
// the debug info first, then globals.
func (d *Debugger) lookupSymbol(name string) (result, error) {
	f := d.SelectedFrame()
	if f != nil {
		if fi := d.proc.Info.FuncByIndex(f.FuncIndex); fi != nil {
			if v, ok := fi.VarByName(name); ok && v.Slot < len(f.Slots) {
				cell := f.Slots[v.Slot]
				return result{val: cell.V, cell: cell}, nil
			}
		}
	}
	if cell := d.proc.VM.GlobalCell(name); cell != nil {
		return result{val: cell.V, cell: cell}, nil
	}
	return result{}, fmt.Errorf("no symbol %q in current context", name)
}
