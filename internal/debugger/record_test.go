package debugger

import (
	"strings"
	"testing"
)

// recLoopSrc prints each iteration, so forward/replay transcripts can be
// compared byte for byte. Line numbers are asserted below.
const recLoopSrc = `func int square(int x) {
	int y = x * x;
	return y;
}
func int main() {
	int total = 0;
	for (int i = 0; i < 6; i++) {
		total = total + square(i);
		printf("i=%d total=%d\n", i, total);
	}
	printf("final %d\n", total);
	return 0;
}
`

func TestRecordLifecycle(t *testing.T) {
	d, out := attach(t, recLoopSrc)
	if err := d.Execute("record"); err == nil {
		t.Fatal("record before run should fail")
	}
	mustExec(t, d, "break main", "run", "record", "info record")
	if !strings.Contains(out.String(), "Process record is started.") {
		t.Fatalf("transcript missing start banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Active record target: execution journal") {
		t.Fatalf("info record missing:\n%s", out.String())
	}
	if err := d.Execute("record"); err == nil {
		t.Fatal("double record should fail")
	}
	mustExec(t, d, "record stop")
	if !strings.Contains(out.String(), "Process record is stopped") {
		t.Fatalf("transcript missing stop banner:\n%s", out.String())
	}
	if err := d.Execute("reverse-step"); err == nil {
		t.Fatal("reverse-step without recording should fail")
	}
	mustExec(t, d, "info record")
	if !strings.Contains(out.String(), "No recording is currently active.") {
		t.Fatalf("info record after stop:\n%s", out.String())
	}
}

func TestReverseStepReturnsToPreviousLine(t *testing.T) {
	d, out := attach(t, recLoopSrc)
	mustExec(t, d, "break main", "run", "record", "next", "next")
	// After two `next` from the stop at line 6 the thread sits at line 8.
	if _, line, _ := d.lineAt(0); line != 8 {
		t.Fatalf("setup: at line %d, want 8", line)
	}
	mustExec(t, d, "reverse-step")
	if _, line, _ := d.lineAt(0); line != 7 {
		t.Fatalf("after reverse-step: line %d, want 7\n%s", line, out.String())
	}
	mustExec(t, d, "reverse-step")
	if _, line, _ := d.lineAt(0); line != 6 {
		t.Fatalf("after second reverse-step: line %d, want 6", line)
	}
	// Forward again: the debuggee replays deterministically.
	mustExec(t, d, "next")
	if _, line, _ := d.lineAt(0); line != 7 {
		t.Fatalf("after re-next: line %d, want 7", line)
	}
}

func TestReverseStepAtHistoryStart(t *testing.T) {
	d, out := attach(t, recLoopSrc)
	mustExec(t, d, "break main", "run", "record", "reverse-step")
	if !strings.Contains(out.String(), "No more reverse-execution history.") {
		t.Fatalf("expected history-start banner:\n%s", out.String())
	}
	// Still at the recording start and able to run forward.
	mustExec(t, d, "next")
	if d.LastStop().Reason != StopStep {
		t.Fatalf("forward step after failed reverse: %v", d.LastStop().Reason)
	}
}

func TestReverseContinueHitsPreviousBreakpoint(t *testing.T) {
	d, out := attach(t, recLoopSrc)
	mustExec(t, d, "break main", "run", "record", "break gen.c:9", "continue", "continue", "continue")
	v, err := d.EvalExpr("i")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 2 {
		t.Fatalf("setup: i = %d, want 2", v.I)
	}
	mustExec(t, d, "reverse-continue")
	if d.LastStop().Reason != StopBreakpoint {
		t.Fatalf("reverse-continue stop = %v, want breakpoint", d.LastStop().Reason)
	}
	if v, _ := d.EvalExpr("i"); v.I != 1 {
		t.Fatalf("after reverse-continue: i = %d, want 1\n%s", v.I, out.String())
	}
	mustExec(t, d, "reverse-continue")
	if v, _ := d.EvalExpr("i"); v.I != 0 {
		t.Fatalf("after second reverse-continue: i = %d, want 0", v.I)
	}
	// Hit counting mirrors the forward run.
	if !strings.Contains(out.String(), "Breakpoint 2, main () at gen.c:9") {
		t.Fatalf("reverse stop banner missing:\n%s", out.String())
	}
}

func TestReverseContinueHonoursConditions(t *testing.T) {
	d, _ := attach(t, recLoopSrc)
	mustExec(t, d, "break main", "run", "record", "break gen.c:9 if i == 1", "continue")
	if v, _ := d.EvalExpr("i"); v.I != 1 {
		t.Fatal("setup: conditional breakpoint should stop at i==1")
	}
	mustExec(t, d, "delete 1", "delete 2", "break gen.c:8 if i == 3", "continue")
	if v, _ := d.EvalExpr("i"); v.I != 3 {
		t.Fatal("setup: should stop at i==3")
	}
	// Backwards: the i==3 site recurs at i==2,1,0 but the condition
	// filters every one of them, so the scan falls back to history start.
	mustExec(t, d, "reverse-continue")
	if d.LastStop().Reason == StopBreakpoint {
		t.Fatal("reverse-continue must not stop on a false condition")
	}
}

func TestRecordGotoAndByteIdenticalReplay(t *testing.T) {
	d, out := attach(t, recLoopSrc)
	mustExec(t, d, "break gen.c:9", "run", "record")
	mark := d.ActiveRecorder().Step()
	preLen := len(out.String())
	mustExec(t, d, "continue", "continue", "continue", "continue", "continue", "continue")
	if d.LastStop().Reason != StopExited {
		t.Fatalf("program should have exited, got %v", d.LastStop().Reason)
	}
	forward := out.String()[preLen:]

	// Rewind out of the exit to the recording start, then drive the same
	// commands: transcript (program output, stop banners) must be
	// byte-identical to the forward leg.
	mustExec(t, d, "record goto "+itoa(mark))
	replayStart := len(out.String())
	mustExec(t, d, "continue", "continue", "continue", "continue", "continue", "continue")
	replay := out.String()[replayStart:]
	if replay != forward {
		t.Fatalf("replay transcript diverged:\n--- forward ---\n%s\n--- replay ---\n%s", forward, replay)
	}
}

func TestSetVariableForcesCheckpoint(t *testing.T) {
	d, _ := attach(t, recLoopSrc)
	mustExec(t, d, "break gen.c:9", "run", "record", "continue", "continue")
	if v, _ := d.EvalExpr("i"); v.I != 2 {
		t.Fatal("setup: want stop at i==2")
	}
	mark := d.ActiveRecorder().Step()
	mustExec(t, d, "set var total = 500")
	mustExec(t, d, "continue", "continue", "continue", "continue")
	if d.LastStop().Reason != StopExited {
		t.Fatalf("want exit, got %v", d.LastStop().Reason)
	}
	want, _ := d.EvalExpr("0 + 0") // no-op to keep evaluator exercised
	_ = want
	mustExec(t, d, "record goto "+itoa(mark))
	v, err := d.EvalExpr("total")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 500 {
		t.Fatalf("replay to mutated stop: total = %d, want 500 (checkpoint lost)", v.I)
	}
}

func itoa(n int64) string {
	var b [20]byte
	i := len(b)
	if n == 0 {
		return "0"
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
