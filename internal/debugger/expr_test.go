package debugger

import (
	"strings"
	"testing"

	"d2x/internal/minic"
)

func exprFixture(t *testing.T) *Debugger {
	t.Helper()
	d, _ := attach(t, `global int g = 10;
global float gf = 2.5;
struct box { int v; }
func int main() {
	int a = 6;
	int b = 7;
	bool flag = true;
	string s = "hi";
	box* p = new box;
	p->v = 3;
	int[] arr = new int[4];
	arr[1] = 9;
	printf("done\n");
	return 0;
}
`)
	mustExec(t, d, "break gen.c:13", "run")
	return d
}

func TestBinaryExpressions(t *testing.T) {
	d := exprFixture(t)
	cases := []struct {
		expr string
		want string
	}{
		{"a + b", "13"},
		{"a * b", "42"},
		{"b - a", "1"},
		{"b / a", "1"},
		{"b % a", "1"},
		{"a < b", "true"},
		{"a >= b", "false"},
		{"a == 6", "true"},
		{"a != 6", "false"},
		{"a + b * 2", "20"},       // precedence
		{"(a + b) * 2", "26"},     // grouping
		{"flag && a < b", "true"}, // logical
		{"flag || a > b", "true"},
		{"g + a", "16"},         // global + local
		{"gf * 2", "5"},         // float math
		{"p->v + arr[1]", "12"}, // postfix mixes
		{"-a + b", "1"},         // unary in binary
		{"s + s", `"hihi"`},     // string concat
	}
	for _, tc := range cases {
		v, err := d.EvalExpr(tc.expr)
		if err != nil {
			t.Errorf("%q: %v", tc.expr, err)
			continue
		}
		if got := minic.FormatValue(v); got != tc.want {
			t.Errorf("%q = %s, want %s", tc.expr, got, tc.want)
		}
	}
}

func TestBinaryExpressionErrors(t *testing.T) {
	d := exprFixture(t)
	for _, expr := range []string{
		"a / 0", // trap semantics preserved
		"a % 0",
		"a +",   // incomplete
		"* a *", // malformed
		"a ==",  // incomplete comparison
	} {
		if _, err := d.EvalExpr(expr); err == nil {
			t.Errorf("%q accepted", expr)
		}
	}
}

func TestCallInsideBinaryExpr(t *testing.T) {
	d, _ := attach(t, `func int twice(int x) {
	return x * 2;
}
func int main() {
	int a = 5;
	printf("done\n");
	return 0;
}
`)
	mustExec(t, d, "break gen.c:6", "run")
	v, err := d.EvalExpr("twice(a) + 1")
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 11 {
		t.Errorf("twice(a) + 1 = %d, want 11", v.I)
	}
	// str_len is a native; natives participate in expressions too.
	v, err = d.EvalExpr(`str_len("abcd") * 10`)
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 40 {
		t.Errorf("native in expression = %d, want 40", v.I)
	}
}

func TestSetWithComputedRHS(t *testing.T) {
	d := exprFixture(t)
	mustExec(t, d, "set var a = b * 2 + 1")
	if v, _ := d.EvalExpr("a"); v.I != 15 {
		t.Errorf("a = %d, want 15", v.I)
	}
	mustExec(t, d, "set var arr[0] = a + 1")
	if v, _ := d.EvalExpr("arr[0]"); v.I != 16 {
		t.Errorf("arr[0] = %d, want 16", v.I)
	}
}

func TestConditionUsingComplexExpr(t *testing.T) {
	d, out := attach(t, `global int hits = 0;
func int main() {
	for (int i = 0; i < 20; i++) {
		hits += 1;
	}
	printf("%d\n", hits);
	return 0;
}
`)
	mustExec(t, d, "break gen.c:4 if i % 7 == 3 && i > 5", "run")
	if v, _ := d.EvalExpr("i"); v.I != 10 {
		t.Errorf("first stop i = %d, want 10", v.I)
	}
	mustExec(t, d, "continue")
	if v, _ := d.EvalExpr("i"); v.I != 17 {
		t.Errorf("second stop i = %d, want 17", v.I)
	}
	mustExec(t, d, "continue")
	if !strings.Contains(out.String(), "20\n") {
		t.Errorf("program did not finish:\n%s", out.String())
	}
}
