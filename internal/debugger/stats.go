package debugger

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"d2x/internal/obs"
)

// cmdStats prints the observability snapshot of the whole debug service —
// every counter, gauge and latency histogram the process has accumulated
// — as indented JSON on the transcript.
func (d *Debugger) cmdStats() error {
	snap := obs.Snapshot()
	b, err := snap.MarshalIndent()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	d.printf("%s\n", b)
	return nil
}

// cmdTrace dumps the structured event trace as JSONL, oldest first. With
// a numeric argument only the most recent N events are printed.
func (d *Debugger) cmdTrace(rest string) error {
	events := obs.Default.Ring().Events()
	if rest = strings.TrimSpace(rest); rest != "" {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return fmt.Errorf("trace: want a non-negative event count, got %q", rest)
		}
		if n < len(events) {
			events = events[len(events)-n:]
		}
	}
	if len(events) == 0 {
		d.printf("No trace events recorded.\n")
		return nil
	}
	for _, e := range events {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		d.printf("%s\n", b)
	}
	return nil
}
