package debugger

import (
	"fmt"
	"strings"

	"d2x/internal/minic"
)

// This file adds the debugger features beyond the paper's minimum:
// conditional breakpoints, watchpoints, automatic display expressions, and
// a disassembler view. None of them know anything about D2X — they are
// the kind of stock-debugger functionality the paper's design composes
// with "orthogonally" (§4.2).

// Watchpoint stops execution when an expression's value changes.
type Watchpoint struct {
	ID    int
	Expr  string
	last  minic.Value
	valid bool
}

// AddWatchpoint installs a watchpoint on the expression. The expression is
// evaluated in the context of whichever thread is about to run, so global
// expressions are the reliable use case (as with GDB software watchpoints).
func (d *Debugger) AddWatchpoint(expr string) (*Watchpoint, error) {
	if _, err := d.EvalExpr(expr); err != nil && d.started {
		return nil, fmt.Errorf("cannot watch %q: %w", expr, err)
	}
	w := &Watchpoint{ID: d.nextBP, Expr: expr}
	d.nextBP++
	if v, err := d.EvalExpr(expr); err == nil {
		w.last = v
		w.valid = true
	}
	d.watchpoints = append(d.watchpoints, w)
	return w, nil
}

// Watchpoints returns the installed watchpoints.
func (d *Debugger) Watchpoints() []*Watchpoint { return d.watchpoints }

// DeleteWatchpoint removes a watchpoint by ID.
func (d *Debugger) DeleteWatchpoint(id int) error {
	for i, w := range d.watchpoints {
		if w.ID == id {
			d.watchpoints = append(d.watchpoints[:i], d.watchpoints[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("no watchpoint number %d", id)
}

// defaultEvalFuel bounds the implicit evaluations the debugger performs
// on its own (watchpoint checks, auto-display refreshes). User-initiated
// `call` and `print` stay on the VM's full synthetic budget.
const defaultEvalFuel int64 = 5_000_000

// guardedEval evaluates an expression with the implicit-evaluation guard
// installed: any debuggee function the expression calls runs under a
// fuel budget and a write barrier, so a stop-path evaluation can neither
// hang the debugger nor mutate the program being debugged.
func (d *Debugger) guardedEval(expr string) (minic.Value, error) {
	d.evalGuard = &minic.Guard{Fuel: defaultEvalFuel, BlockWrites: true}
	defer func() { d.evalGuard = nil }()
	return d.EvalExpr(expr)
}

// checkWatchpoints evaluates all watchpoints and returns the first one
// whose value changed, with old and new values.
func (d *Debugger) checkWatchpoints() (*Watchpoint, minic.Value, minic.Value) {
	for _, w := range d.watchpoints {
		v, err := d.guardedEval(w.Expr)
		if err != nil {
			// Expression not evaluable in this context (e.g. a local of a
			// returned frame); skip, like GDB's scope handling.
			continue
		}
		if !w.valid {
			w.last = v
			w.valid = true
			continue
		}
		if !minic.ValuesEqual(w.last, v) {
			old := w.last
			w.last = v
			return w, old, v
		}
	}
	return nil, minic.Value{}, minic.Value{}
}

// cmdWatch implements `watch EXPR`.
func (d *Debugger) cmdWatch(rest string) error {
	if strings.TrimSpace(rest) == "" {
		return fmt.Errorf("watch requires an expression")
	}
	w, err := d.AddWatchpoint(rest)
	if err != nil {
		return err
	}
	d.printf("Watchpoint %d: %s\n", w.ID, w.Expr)
	return nil
}

// cmdUnwatch implements `unwatch N`.
func (d *Debugger) cmdUnwatch(rest string) error {
	var id int
	if _, err := fmt.Sscanf(rest, "%d", &id); err != nil {
		return fmt.Errorf("bad watchpoint number %q", rest)
	}
	if err := d.DeleteWatchpoint(id); err != nil {
		return err
	}
	d.printf("Deleted watchpoint %d\n", id)
	return nil
}

// displayEntry is one auto-display expression.
type displayEntry struct {
	ID   int
	Expr string
}

// cmdDisplay implements `display EXPR` / bare `display`.
func (d *Debugger) cmdDisplay(rest string) error {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		d.showDisplays()
		return nil
	}
	d.displayCnt++
	d.displays = append(d.displays, displayEntry{ID: d.displayCnt, Expr: rest})
	d.showDisplays()
	return nil
}

// cmdUndisplay implements `undisplay N`.
func (d *Debugger) cmdUndisplay(rest string) error {
	var id int
	if _, err := fmt.Sscanf(rest, "%d", &id); err != nil {
		return fmt.Errorf("bad display number %q", rest)
	}
	for i, e := range d.displays {
		if e.ID == id {
			d.displays = append(d.displays[:i], d.displays[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("no display number %d", id)
}

// showDisplays prints every display expression's current value; called
// after each stop.
func (d *Debugger) showDisplays() {
	for _, e := range d.displays {
		v, err := d.guardedEval(e.Expr)
		if err != nil {
			d.printf("%d: %s = <error: %v>\n", e.ID, e.Expr, err)
			continue
		}
		d.printf("%d: %s = %s\n", e.ID, e.Expr, minic.FormatValue(v))
	}
}

// cmdDisas implements `disas [func]`: bytecode of the named function or of
// the selected frame's function.
func (d *Debugger) cmdDisas(rest string) error {
	dis := minic.NewDisassembler(d.proc.VM.Prog)
	name := strings.TrimSpace(rest)
	if name == "" {
		f := d.SelectedFrame()
		if f == nil {
			return fmt.Errorf("no frame selected; name a function")
		}
		d.printf("%s", dis.FuncByIndex(f.FuncIndex))
		return nil
	}
	if d.proc.VM.Prog.FuncIndex(name) < 0 {
		return fmt.Errorf("no function %q", name)
	}
	d.printf("%s", dis.Func(name))
	return nil
}
