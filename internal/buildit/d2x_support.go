package buildit

// D2X support for the buildit framework — the entire Table 4 delta, plus
// the marked hunks in buildit.go (see DESIGN.md §5 for the accounting
// rule). The paper's claim for this case study (§5.2) is that one
// framework-level integration makes every DSL built on the framework
// debuggable: static tags come for free from the first-stage call stack,
// so einsum needed zero lines of change.

import (
	"runtime"
	"strings"

	"d2x/internal/d2x"
	"d2x/internal/d2x/d2xc"
	"d2x/internal/srcloc"
)

// Link generates the staged program and assembles a debuggable build:
// generated code with the D2X tables inside it, standard debug info, and
// the D2X runtime. Without EnableD2X it produces the plain program (the
// overhead baseline).
func (b *Builder) Link(filename string, opts d2x.LinkOptions) (*d2x.Build, error) {
	src, ctx, err := b.Generate(filename)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		opts.WithoutD2X = true
	}
	return d2x.Link(filename, src, ctx, opts)
}

// captureTag harvests the first-stage call stack as a static tag,
// innermost first. Frames inside buildit itself are dropped (the tag
// should point at the DSL and its user, not the framework), and the walk
// stops at the Go runtime / testing harness below the user's entry
// point.
func captureTag() srcloc.Stack {
	goroot := runtime.GOROOT()
	full := d2xc.CallerStack(1) // skip captureTag itself
	var out srcloc.Stack
	for _, fr := range full {
		if strings.Contains(fr.File, "internal/buildit") {
			continue
		}
		if goroot != "" && strings.HasPrefix(fr.File, goroot+"/src/") {
			break
		}
		if strings.Contains(fr.File, "/src/runtime/") || strings.Contains(fr.File, "/src/testing/") {
			break
		}
		out = append(out, fr)
	}
	return out
}

// snapshotStatics renders the current value of every static variable
// registered so far — the per-line snapshot that lets the debugger show
// erased first-stage state (Figure 9).
func (f *FuncBuilder) snapshotStatics() []staticKV {
	kv := make([]staticKV, len(f.statics))
	for i, s := range f.statics {
		kv[i] = staticKV{key: s.name, val: s.get()}
	}
	return kv
}

// beginFuncD2X opens the function's D2X section and scope and declares
// its static variables as live.
func beginFuncD2X(em *d2xc.Emitter, ctx *d2xc.Context, f *FuncBuilder) error {
	if err := em.BeginSection(); err != nil {
		return err
	}
	ctx.PushScope()
	for _, s := range f.statics {
		ctx.CreateVar(s.name)
	}
	return nil
}

// emitStmtD2X records one generated line's extended stack and updates
// the live static values to their staging-time snapshot.
func emitStmtD2X(ctx *d2xc.Context, st stmtRec) error {
	for _, fr := range st.tag {
		ctx.PushLoc(fr)
	}
	for _, kv := range st.snap {
		if err := ctx.UpdateVar(kv.key, kv.val); err != nil {
			return err
		}
	}
	return nil
}

// endFuncD2X closes the function's scope and section; the scope is
// popped first so the closing brace line carries no stale live
// variables.
func endFuncD2X(em *d2xc.Emitter, ctx *d2xc.Context) error {
	if err := ctx.PopScope(); err != nil {
		return err
	}
	return em.EndSection()
}
