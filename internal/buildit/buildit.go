// Package buildit is a minimal multi-stage programming framework — the
// reproduction of the BuildIt library the paper's §5 uses as its second
// case study. A first-stage Go program drives a Builder to stage
// second-stage mini-C code: dynamic values become generated variables,
// static values (Static[T]) are evaluated at staging time and erased
// from the output, and first-stage control flow (plain Go loops and ifs)
// unrolls into straight-line generated code.
//
// The D2X integration lives in d2x_support.go and in the small marked
// hunks below: one EnableD2X call opts a whole DSL built on this
// framework into contextual debugging (paper §5.2), with static tags
// harvested from the Go call stack and static variables snapshotted onto
// every generated line.
package buildit

import (
	"fmt"
	"strings"

	"d2x/internal/d2x/d2xc"
	"d2x/internal/minic"
	"d2x/internal/srcloc"
)

// Param describes one parameter of a staged function.
type Param struct {
	Name string
	Type *minic.Type
}

// Operator precedence levels for generated expressions, used to insert
// the minimum parentheses that preserve evaluation order.
const (
	precCmp     = 2
	precAdd     = 3
	precMul     = 4
	precUnary   = 5
	precPostfix = 6
	precAtom    = 7
)

// Expr is a second-stage expression: a fragment of generated mini-C with
// its type and outermost-operator precedence. The zero Expr means "no
// expression" — a void return.
type Expr struct {
	text string
	typ  *minic.Type
	prec int
}

// Text returns the generated surface syntax of the expression.
func (e Expr) Text() string { return e.text }

// Type returns the expression's mini-C type (nil for the zero Expr).
func (e Expr) Type() *minic.Type { return e.typ }

// Dyn is a typed first-class handle on a second-stage value — the
// dyn_var<T> of the paper. The staged operations in this reproduction are
// carried by Expr; Dyn tags an Expr with a host-level type parameter for
// DSLs that want the extra compile-time safety.
type Dyn[T any] struct{ ex Expr }

// DynOf wraps a staged expression as a Dyn.
func DynOf[T any](e Expr) Dyn[T] { return Dyn[T]{ex: e} }

// Expr unwraps the staged expression.
func (d Dyn[T]) Expr() Expr { return d.ex }

// Static is a first-stage variable — the static_var<T> of the paper. It
// exists only while staging runs and is fully erased from the generated
// code; first-stage control flow reads it through Get and advances it
// through Set. With D2X enabled its per-line values are snapshotted into
// the debug tables, so the debugger can show the erased state that
// produced each generated line (Figure 9's "xvars exponent").
type Static[T any] struct {
	name string
	val  T
}

// NewStatic declares a static variable scoped to the staged function f,
// initialised to v.
func NewStatic[T any](f *FuncBuilder, name string, v T) *Static[T] {
	s := &Static[T]{name: name, val: v}
	f.registerStatic(name, func() string { return fmt.Sprint(s.val) })
	return s
}

// Get reads the current first-stage value.
func (s *Static[T]) Get() T { return s.val }

// Set updates the first-stage value.
func (s *Static[T]) Set(v T) { s.val = v }

// Name returns the variable's debugger-visible name.
func (s *Static[T]) Name() string { return s.name }

// Builder stages a whole second-stage program: an ordered collection of
// staged functions.
type Builder struct {
	funcs []*FuncBuilder
	d2x   bool
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// EnableD2X opts every function staged through b into D2X: static tags
// are captured from the first-stage call stack and static variables are
// snapshotted per generated line. This one call is the entire per-DSL
// integration cost (paper §5.2).
func EnableD2X(b *Builder) {
	// D2X:BEGIN enable
	b.d2x = true
	// D2X:END enable
}

// Func starts staging a new function with the given parameters and
// result type.
func (b *Builder) Func(name string, params []Param, result *minic.Type) *FuncBuilder {
	f := &FuncBuilder{b: b, name: name, params: params, result: result}
	b.funcs = append(b.funcs, f)
	return f
}

// staticEntry is one registered static variable: its debugger-visible
// name and a getter that renders its current first-stage value.
type staticEntry struct {
	name string
	get  func() string
}

// stmtRec is one recorded generated statement, with everything needed to
// emit it and its D2X line record later.
type stmtRec struct {
	text   string
	indent int
	tag    srcloc.Stack // D2X static tag: first-stage stack at staging time
	snap   []staticKV   // D2X snapshot of static values at staging time
}

// staticKV is one snapshotted static value.
type staticKV struct {
	key string
	val string
}

// FuncBuilder stages one function. Statement methods append generated
// statements in order; expression methods build Exprs without emitting
// anything.
type FuncBuilder struct {
	b       *Builder
	name    string
	params  []Param
	result  *minic.Type
	stmts   []stmtRec
	indent  int
	ndecl   int
	statics []staticEntry
}

// Name returns the staged function's name in the generated program.
func (f *FuncBuilder) Name() string { return f.name }

// registerStatic records a static variable's getter for per-line
// snapshots and for scope bookkeeping in the debug tables.
func (f *FuncBuilder) registerStatic(name string, get func() string) {
	f.statics = append(f.statics, staticEntry{name: name, get: get})
}

// add appends one generated statement at the current nesting depth.
func (f *FuncBuilder) add(format string, args ...any) {
	rec := stmtRec{text: fmt.Sprintf(format, args...), indent: f.indent}
	// D2X:BEGIN stmt-tagging
	if f.b.d2x {
		rec.tag = captureTag()
		rec.snap = f.snapshotStatics()
	}
	// D2X:END stmt-tagging
	f.stmts = append(f.stmts, rec)
}

// fresh mints a generated variable name: user name + per-function
// ordinal, so first-stage reuse of a name cannot collide.
func (f *FuncBuilder) fresh(name string) string {
	f.ndecl++
	return fmt.Sprintf("%s_%d", name, f.ndecl)
}

// Arg returns the i-th parameter as an expression.
func (f *FuncBuilder) Arg(i int) Expr {
	p := f.params[i]
	return Expr{text: p.Name, typ: p.Type, prec: precAtom}
}

// IntLit returns an integer literal expression.
func (f *FuncBuilder) IntLit(v int64) Expr {
	return Expr{text: fmt.Sprint(v), typ: minic.IntType, prec: precAtom}
}

// StringLit returns a string literal expression.
func (f *FuncBuilder) StringLit(s string) Expr {
	return Expr{text: minic.Quote(s), typ: minic.StringType, prec: precAtom}
}

// bin builds a binary expression, parenthesizing operands whose
// outermost operator binds less tightly (or equally, on the right of a
// non-associative operator).
func (f *FuncBuilder) bin(op string, prec int, x, y Expr, typ *minic.Type) Expr {
	l := x.text
	if x.prec < prec {
		l = "(" + l + ")"
	}
	r := y.text
	if y.prec < prec || (y.prec == prec && !associative(op)) {
		r = "(" + r + ")"
	}
	return Expr{text: l + " " + op + " " + r, typ: typ, prec: prec}
}

// associative reports whether chaining the operator to the right needs
// no parentheses (integer + and * are).
func associative(op string) bool { return op == "+" || op == "*" }

// Add returns x + y.
func (f *FuncBuilder) Add(x, y Expr) Expr { return f.bin("+", precAdd, x, y, x.typ) }

// Sub returns x - y.
func (f *FuncBuilder) Sub(x, y Expr) Expr { return f.bin("-", precAdd, x, y, x.typ) }

// Mul returns x * y.
func (f *FuncBuilder) Mul(x, y Expr) Expr { return f.bin("*", precMul, x, y, x.typ) }

// Div returns x / y.
func (f *FuncBuilder) Div(x, y Expr) Expr { return f.bin("/", precMul, x, y, x.typ) }

// Mod returns x % y.
func (f *FuncBuilder) Mod(x, y Expr) Expr { return f.bin("%", precMul, x, y, minic.IntType) }

// Lt returns x < y.
func (f *FuncBuilder) Lt(x, y Expr) Expr { return f.bin("<", precCmp, x, y, minic.BoolType) }

// Index returns arr[idx].
func (f *FuncBuilder) Index(arr, idx Expr) Expr {
	a := arr.text
	if arr.prec < precPostfix {
		a = "(" + a + ")"
	}
	var elem *minic.Type
	if arr.typ != nil {
		elem = arr.typ.Elem
	}
	return Expr{text: a + "[" + idx.text + "]", typ: elem, prec: precPostfix}
}

// Call returns a call expression naming a staged or native function; the
// callee's result type must be supplied because staging is single-pass.
func (f *FuncBuilder) Call(name string, result *minic.Type, args ...Expr) Expr {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.text
	}
	return Expr{text: name + "(" + strings.Join(parts, ", ") + ")", typ: result, prec: precPostfix}
}

// Decl declares a fresh generated variable initialised to init and
// returns it as an expression.
func (f *FuncBuilder) Decl(name string, init Expr) Expr {
	v := f.fresh(name)
	f.add("%s %s = %s;", init.typ, v, init.text)
	return Expr{text: v, typ: init.typ, prec: precAtom}
}

// DeclArr declares a fresh generated array of count elements and returns
// it as an expression.
func (f *FuncBuilder) DeclArr(name string, elem *minic.Type, count Expr) Expr {
	v := f.fresh(name)
	typ := minic.ArrayOf(elem)
	f.add("%s %s = new %s[%s];", typ, v, elem, count.text)
	return Expr{text: v, typ: typ, prec: precAtom}
}

// Assign emits lhs = rhs;.
func (f *FuncBuilder) Assign(lhs, rhs Expr) { f.add("%s = %s;", lhs.text, rhs.text) }

// AddAssign emits lhs += rhs;.
func (f *FuncBuilder) AddAssign(lhs, rhs Expr) { f.add("%s += %s;", lhs.text, rhs.text) }

// Do emits the expression as a statement (for calls evaluated for
// effect).
func (f *FuncBuilder) Do(x Expr) { f.add("%s;", x.text) }

// Printf emits a printf statement with the given mini-C format verbs.
func (f *FuncBuilder) Printf(format string, args ...Expr) {
	parts := make([]string, 0, len(args)+1)
	parts = append(parts, minic.Quote(format))
	for _, a := range args {
		parts = append(parts, a.text)
	}
	f.add("printf(%s);", strings.Join(parts, ", "))
}

// Return emits a return statement; the zero Expr returns void.
func (f *FuncBuilder) Return(x Expr) {
	if x.text == "" {
		f.add("return;")
		return
	}
	f.add("return %s;", x.text)
}

// For stages a generated counting loop [lo, hi) — second-stage control
// flow that survives into the output, unlike first-stage Go loops which
// unroll. The body callback receives the loop variable.
func (f *FuncBuilder) For(name string, lo, hi Expr, body func(iv Expr)) {
	v := f.fresh(name)
	f.add("for (int %s = %s; %s < %s; %s++) {", v, lo.text, v, hi.text, v)
	f.indent++
	body(Expr{text: v, typ: minic.IntType, prec: precAtom})
	f.indent--
	f.add("}")
}

// paramList renders the generated parameter list.
func (f *FuncBuilder) paramList() string {
	parts := make([]string, len(f.params))
	for i, p := range f.params {
		parts[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	return strings.Join(parts, ", ")
}

// Generate renders the staged program as mini-C source. With D2X enabled
// it also produces the compile-time context holding the debug tables;
// otherwise the context is nil. Generate may be called repeatedly; each
// call renders from the recorded statements with a fresh context.
func (b *Builder) Generate(filename string) (string, *d2xc.Context, error) {
	_ = filename // the caller compiles under this name; the text does not embed it
	var ctx *d2xc.Context
	// D2X:BEGIN generate-context
	if b.d2x {
		ctx = d2xc.NewContext()
	}
	// D2X:END generate-context
	em := d2xc.NewEmitter(ctx)
	for _, f := range b.funcs {
		em.Emitln("func %s %s(%s) {", f.result, f.name, f.paramList())
		// D2X:BEGIN generate-section
		if ctx != nil {
			if err := beginFuncD2X(em, ctx, f); err != nil {
				return "", nil, err
			}
		}
		// D2X:END generate-section
		for _, st := range f.stmts {
			// D2X:BEGIN generate-line
			if ctx != nil {
				if err := emitStmtD2X(ctx, st); err != nil {
					return "", nil, err
				}
			}
			// D2X:END generate-line
			em.Emitln("%s", strings.Repeat("\t", 1+st.indent)+st.text)
		}
		// D2X:BEGIN generate-section-end
		if ctx != nil {
			if err := endFuncD2X(em, ctx); err != nil {
				return "", nil, err
			}
		}
		// D2X:END generate-section-end
		em.Emitln("}")
		em.Emitln("")
	}
	return em.String(), ctx, nil
}
