package loc

import (
	"fmt"
	"strings"
)

// Row is one line of a rendered evaluation table.
type Row struct {
	Component string
	Value     string
}

// Table is a rendered evaluation table, paper-style.
type Table struct {
	Title string
	Rows  []Row
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	width := 0
	for _, r := range t.Rows {
		if len(r.Component) > width {
			width = len(r.Component)
		}
	}
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, r.Component, r.Value)
	}
	return b.String()
}

// Table3 reproduces the paper's Table 3: GraphIt's size, the D2X delta,
// and the D2X library components.
func Table3(root string) (*Table, error) {
	graphit, err := CountComponent(root, "graphit", "internal/graphit")
	if err != nil {
		return nil, err
	}
	d2xc, err := CountComponent(root, "d2xc", "internal/d2x/d2xc", "internal/d2x/d2xenc")
	if err != nil {
		return nil, err
	}
	d2xr, err := CountComponent(root, "d2xr", "internal/d2x/d2xr", "internal/d2x/session")
	if err != nil {
		return nil, err
	}
	macros, err := CountComponent(root, "macros", "internal/d2x/macros")
	if err != nil {
		return nil, err
	}
	total := d2xc.Total + d2xr.Total + macros.Total
	return &Table{
		Title: "Table 3: lines of code changed in GraphIt and size of D2X (this reproduction)",
		Rows: []Row{
			{"GraphIt DSL Compiler and Runtime", fmt.Sprintf("%d", graphit.NonDelta())},
			{"Delta for adding D2X support", fmt.Sprintf("%d (in %d d2x_* files + %d marked hunks)", graphit.Delta, graphit.DeltaFiles, graphit.Hunks)},
			{"GraphIt percentage change", fmt.Sprintf("%.1f%%", graphit.DeltaPercent())},
			{"D2X-C", fmt.Sprintf("%d", d2xc.Total)},
			{"D2X-R", fmt.Sprintf("%d", d2xr.Total)},
			{"D2X helper macros", fmt.Sprintf("%d", macros.Total)},
			{"D2X total", fmt.Sprintf("%d", total)},
		},
	}, nil
}

// Table4 reproduces the paper's Table 4: BuildIt's size and its delta.
func Table4(root string) (*Table, error) {
	buildit, err := CountComponent(root, "buildit", "internal/buildit")
	if err != nil {
		return nil, err
	}
	return &Table{
		Title: "Table 4: lines of code changed in BuildIt (this reproduction)",
		Rows: []Row{
			{"BuildIt DSL compiler framework", fmt.Sprintf("%d", buildit.NonDelta())},
			{"Delta for adding D2X support", fmt.Sprintf("%d (in %d d2x_* files + %d marked hunks)", buildit.Delta, buildit.DeltaFiles, buildit.Hunks)},
			{"BuildIt percentage change", fmt.Sprintf("%.1f%%", buildit.DeltaPercent())},
		},
	}, nil
}

// GraphItStats and BuildItStats expose the raw numbers for benches and
// EXPERIMENTS.md generation.
func GraphItStats(root string) (Stats, error) {
	return CountComponent(root, "graphit", "internal/graphit")
}

// BuildItStats counts the buildit framework.
func BuildItStats(root string) (Stats, error) {
	return CountComponent(root, "buildit", "internal/buildit")
}
