package loc

import (
	"errors"
	"strings"
	"testing"
)

func TestCountSource(t *testing.T) {
	src := `package x

// a comment
func f() int { // trailing comments do not demote a code line
	return 1
}

/* block
   comment */
var g = 2
`
	st := CountSource(src)
	if st.Code != 5 {
		t.Errorf("Code = %d, want 5", st.Code)
	}
	if st.Blank != 3 {
		t.Errorf("Blank = %d, want 3", st.Blank)
	}
	if st.Comment != 3 {
		t.Errorf("Comment = %d, want 3", st.Comment)
	}
	if st.Marked != 0 || st.MarkedHunks != 0 {
		t.Errorf("unexpected marked lines: %+v", st)
	}
}

func TestCountMarkedHunks(t *testing.T) {
	src := `package x
func f() {
	a := 1
	// D2X:BEGIN hook
	hook(a)
	hook2(a)
	// D2X:END hook
	b := 2
	// D2X:BEGIN other
	hook3(b)
	// D2X:END other
}
`
	st := CountSource(src)
	if st.Marked != 3 {
		t.Errorf("Marked = %d, want 3", st.Marked)
	}
	if st.MarkedHunks != 2 {
		t.Errorf("MarkedHunks = %d, want 2", st.MarkedHunks)
	}
	if st.Code != 8 {
		t.Errorf("Code = %d, want 8", st.Code)
	}
}

func TestRepoRoot(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && !strings.Contains(root, "/") {
		t.Errorf("suspicious root %q", root)
	}
}

func TestGraphItDeltaShape(t *testing.T) {
	// The reproduction must exhibit the paper's headline property: adding
	// D2X to GraphIt is a small-percentage change (paper: 1.4%). Allow
	// generous slack — the shape, not the constant, is the claim.
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	st, err := GraphItStats(root)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delta == 0 {
		t.Fatal("no GraphIt D2X delta found; marking rules broken")
	}
	if pct := st.DeltaPercent(); pct > 15 {
		t.Errorf("GraphIt delta = %.1f%%, expected a small fraction", pct)
	}
	if st.DeltaFiles < 1 || st.Hunks < 1 {
		t.Errorf("expected dedicated files and marked hunks, got %+v", st)
	}
}

func TestBuildItDeltaShape(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	st, err := BuildItStats(root)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delta == 0 {
		t.Fatal("no BuildIt D2X delta found")
	}
	// Paper: 6.1%. BuildIt is small, so its percentage is naturally
	// higher than GraphIt's — that orders the same way here.
	gst, err := GraphItStats(root)
	if err != nil {
		t.Fatal(err)
	}
	if st.DeltaPercent() <= gst.DeltaPercent() {
		t.Errorf("expected BuildIt delta %% (%.1f) > GraphIt delta %% (%.1f), as in the paper",
			st.DeltaPercent(), gst.DeltaPercent())
	}
}

func TestTablesRender(t *testing.T) {
	root, err := RepoRoot()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(root)
	if err != nil {
		t.Fatal(err)
	}
	s3 := t3.String()
	for _, want := range []string{"GraphIt DSL Compiler and Runtime", "D2X-C", "D2X-R", "D2X helper macros", "percentage change"} {
		if !strings.Contains(s3, want) {
			t.Errorf("Table 3 missing row %q:\n%s", want, s3)
		}
	}
	t4, err := Table4(root)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(t4.String(), "BuildIt DSL compiler framework") {
		t.Errorf("Table 4:\n%s", t4)
	}
}

func TestCountComponentMissingDir(t *testing.T) {
	_, err := CountComponent("/nonexistent", "x", "nope")
	if err == nil {
		t.Fatal("missing directory accepted")
	}
	// The error is typed so tools can distinguish "component not built
	// yet" from real I/O failures, and name the component.
	comp, ok := IsMissingComponent(err)
	if !ok {
		t.Fatalf("error %v is not an ErrMissingComponent", err)
	}
	if comp != "x" {
		t.Errorf("component = %q, want %q", comp, "x")
	}
	var me *ErrMissingComponent
	if !errors.As(err, &me) {
		t.Fatalf("errors.As failed on %v", err)
	}
	if me.Dir == "" || me.Err == nil {
		t.Errorf("incomplete error detail: %+v", me)
	}
}
