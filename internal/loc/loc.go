// Package loc counts lines of code with D2X-delta attribution, the
// instrument behind the paper's evaluation (Tables 3 and 4): how much of a
// DSL compiler had to change to gain full contextual debugging.
//
// The counting rule matches DESIGN.md §5: a component's D2X delta is
// (a) every line of its dedicated d2x_*.go files, plus (b) every line
// inside `// D2X:BEGIN` ... `// D2X:END` hunks in its other files. Blank
// lines and comment-only lines are not code; test files are excluded from
// component totals, mirroring the paper's note that LLDB's 543K lines
// exclude test cases.
package loc

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// ErrMissingComponent reports that a component's source directory does
// not exist. Callers that tolerate partially-built trees (the seed state
// before every component landed) match it with errors.As and read the
// component name from it.
type ErrMissingComponent struct {
	Component string // component name passed to CountComponent
	Dir       string // the directory that could not be read
	Err       error  // underlying filesystem error
}

func (e *ErrMissingComponent) Error() string {
	return fmt.Sprintf("loc: component %q: missing directory %s: %v", e.Component, e.Dir, e.Err)
}

func (e *ErrMissingComponent) Unwrap() error { return e.Err }

// IsMissingComponent reports whether err is an ErrMissingComponent and
// returns the missing component's name.
func IsMissingComponent(err error) (string, bool) {
	var me *ErrMissingComponent
	if errors.As(err, &me) {
		return me.Component, true
	}
	return "", false
}

// Stats summarises one component.
type Stats struct {
	Name       string
	Files      int
	Total      int // code lines, D2X delta included
	Delta      int // code lines attributable to D2X support
	DeltaFiles int // how many dedicated d2x_*.go files contribute
	Hunks      int // how many marked hunks contribute
}

// NonDelta returns the component's size without its D2X support.
func (s Stats) NonDelta() int { return s.Total - s.Delta }

// DeltaPercent returns the delta as a percentage of the non-delta size
// (the paper's "percentage change" row).
func (s Stats) DeltaPercent() float64 {
	if s.NonDelta() == 0 {
		return 0
	}
	return 100 * float64(s.Delta) / float64(s.NonDelta())
}

// RepoRoot locates the repository root from this source file's location,
// so tools and benchmarks work regardless of the working directory.
func RepoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("loc: cannot locate source file")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file))) // internal/loc/loc.go -> repo root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return "", fmt.Errorf("loc: %s does not look like the repo root: %w", root, err)
	}
	return root, nil
}

// CountComponent counts the Go code under the given directories (relative
// to root), attributing D2X delta per the marking rules.
func CountComponent(root, name string, dirs ...string) (Stats, error) {
	st := Stats{Name: name}
	for _, dir := range dirs {
		full := filepath.Join(root, dir)
		entries, err := os.ReadDir(full)
		if err != nil {
			return st, &ErrMissingComponent{Component: name, Dir: full, Err: err}
		}
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			names = append(names, e.Name())
		}
		sort.Strings(names)
		for _, fn := range names {
			data, err := os.ReadFile(filepath.Join(full, fn))
			if err != nil {
				return st, err
			}
			fileStats := CountSource(string(data))
			st.Files++
			st.Total += fileStats.Code
			if strings.HasPrefix(fn, "d2x_") {
				st.Delta += fileStats.Code
				st.DeltaFiles++
			} else {
				st.Delta += fileStats.Marked
				st.Hunks += fileStats.MarkedHunks
			}
		}
	}
	return st, nil
}

// SourceStats is the per-file breakdown.
type SourceStats struct {
	Code        int // non-blank, non-comment lines
	Comment     int
	Blank       int
	Marked      int // code lines inside D2X:BEGIN/END hunks
	MarkedHunks int
}

// CountSource classifies the lines of one Go source file.
func CountSource(src string) SourceStats {
	var st SourceStats
	inBlock := false  // inside /* */
	inMarked := false // inside a D2X hunk
	for _, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		switch {
		case strings.Contains(line, "D2X:BEGIN"):
			inMarked = true
			st.Comment++
			continue
		case strings.Contains(line, "D2X:END"):
			inMarked = false
			st.Comment++
			continue
		}
		if inBlock {
			st.Comment++
			if strings.Contains(line, "*/") {
				inBlock = false
			}
			continue
		}
		switch {
		case line == "":
			st.Blank++
		case strings.HasPrefix(line, "//"):
			st.Comment++
		case strings.HasPrefix(line, "/*"):
			st.Comment++
			if !strings.Contains(line[2:], "*/") {
				inBlock = true
			}
		default:
			st.Code++
			if inMarked {
				st.Marked++
			}
		}
	}
	if inMarked {
		st.MarkedHunks++ // unterminated hunk still counts (and is a bug)
	}
	// Count hunks precisely in a second pass.
	st.MarkedHunks = strings.Count(src, "D2X:BEGIN")
	return st
}
