package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry(16)
	c := r.Counter("a.calls")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("a.calls") != c {
		t.Error("counter handle not stable per name")
	}

	g := r.Gauge("live")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.Max() != 5 {
		t.Errorf("gauge = %d/%d, want 1/5", g.Value(), g.Max())
	}
	g.Set(7)
	if g.Value() != 7 || g.Max() != 7 {
		t.Errorf("gauge after Set = %d/%d, want 7/7", g.Value(), g.Max())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry(16)
	h := r.Histogram("lat")
	// 90 fast samples around 1µs, 10 slow around 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
	// Log2 buckets: the estimate must land within a factor of 2.
	if p50 < 512 || p50 > 2048 {
		t.Errorf("p50 = %dns, want ~1µs", p50)
	}
	if p99 < 512*1024 || p99 > 2*1024*1024 {
		t.Errorf("p99 = %dns, want ~1ms", p99)
	}
	if h.MaxNS() < int64(time.Millisecond) {
		t.Errorf("max = %dns", h.MaxNS())
	}
}

func TestHistogramSinceZeroStart(t *testing.T) {
	var h Histogram
	h.Since(time.Time{}) // disabled-at-start: must record nothing
	if h.Count() != 0 {
		t.Errorf("count = %d after zero-start Since", h.Count())
	}
	h.Since(time.Now().Add(-time.Millisecond))
	if h.Count() != 1 || h.SumNS() < int64(time.Millisecond) {
		t.Errorf("count=%d sum=%d after real Since", h.Count(), h.SumNS())
	}
}

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Kind: "cmd", Name: "xbt", DurNS: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4 (ring cap)", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(6+i) || e.DurNS != int64(6+i) {
			t.Errorf("event %d = seq %d dur %d, want %d", i, e.Seq, e.DurNS, 6+i)
		}
	}
	if r.Written() != 10 || r.Len() != 4 {
		t.Errorf("written/len = %d/%d", r.Written(), r.Len())
	}
}

func TestRingJSONL(t *testing.T) {
	r := NewRing(8)
	r.Add(Event{Kind: "cmd", Name: "xbt", Session: 3, RIP: 0x42, DurNS: 1234})
	r.Add(Event{Kind: "guard", Name: "barrier", Err: "write to debuggee blocked"})
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "cmd" || e.Name != "xbt" || e.Session != 3 || e.RIP != 0x42 || e.DurNS != 1234 {
		t.Errorf("round-trip = %+v", e)
	}
	if !strings.Contains(lines[1], "write to debuggee blocked") {
		t.Errorf("error event lost: %s", lines[1])
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry(16)
	r.Counter("d2xr.cmd.xbt.calls").Add(7)
	r.Gauge("session.live").Set(2)
	r.Histogram("d2xr.cmd.xbt").Observe(5 * time.Microsecond)
	r.Ring().Add(Event{Kind: "cmd", Name: "xbt"})
	s := r.Snapshot()
	b, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, b)
	}
	for _, key := range []string{"counters", "gauges", "latencies", "trace_events"} {
		if _, ok := back[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
	if s.Counters["d2xr.cmd.xbt.calls"] != 7 {
		t.Errorf("counter in snapshot = %d", s.Counters["d2xr.cmd.xbt.calls"])
	}
	if s.Latencies["d2xr.cmd.xbt"].Count != 1 {
		t.Errorf("latency count = %d", s.Latencies["d2xr.cmd.xbt"].Count)
	}
}

func TestResetPreservesHandles(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("x")
	h := r.Histogram("y")
	g := r.Gauge("z")
	c.Add(5)
	h.Observe(time.Microsecond)
	g.Set(9)
	r.Ring().Add(Event{Kind: "cmd"})
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || g.Value() != 0 || g.Max() != 0 || r.Ring().Len() != 0 {
		t.Error("Reset left residue")
	}
	// Cached handles must still feed the registry after Reset.
	c.Inc()
	if r.Snapshot().Counters["x"] != 1 {
		t.Error("cached handle detached from registry after Reset")
	}
}

// TestConcurrentCountersAndRing is the obs half of the satellite
// concurrency requirement: N goroutines hammer one counter, one
// histogram, one gauge and the ring; the counter must sum exactly, the
// histogram count must match, and every dumped event must be
// well-formed (the atomic.Pointer slots make torn reads impossible —
// run with -race).
func TestConcurrentCountersAndRing(t *testing.T) {
	r := NewRegistry(64)
	c := r.Counter("c")
	h := r.Histogram("h")
	g := r.Gauge("g")
	const goroutines, per = 16, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(time.Duration(j) * time.Nanosecond)
				g.Add(1)
				g.Add(-1)
				r.Ring().Add(Event{Kind: "cmd", Name: "xbt", Session: int64(id), DurNS: int64(j)})
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*per {
		t.Errorf("counter = %d, want %d", c.Value(), goroutines*per)
	}
	if h.Count() != goroutines*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*per)
	}
	if g.Value() != 0 || g.Max() < 1 {
		t.Errorf("gauge = %d/%d", g.Value(), g.Max())
	}
	if r.Ring().Written() != goroutines*per {
		t.Errorf("ring written = %d, want %d", r.Ring().Written(), goroutines*per)
	}
	for _, e := range r.Ring().Events() {
		if e.Kind != "cmd" || e.Name != "xbt" || e.Session < 0 || e.Session >= goroutines {
			t.Fatalf("torn or malformed event: %+v", e)
		}
	}
}

func TestEnabledGatesNowAndEmit(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if !Now().IsZero() {
		t.Error("Now() not zero while disabled")
	}
	before := Default.Ring().Written()
	Emit(Event{Kind: "cmd", Name: "x"})
	if Default.Ring().Written() != before {
		t.Error("Emit recorded while disabled")
	}
	SetEnabled(true)
	if Now().IsZero() {
		t.Error("Now() zero while enabled")
	}
	Emit(Event{Kind: "cmd", Name: "x"})
	if Default.Ring().Written() != before+1 {
		t.Error("Emit dropped while enabled")
	}
}
