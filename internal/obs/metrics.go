package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use; Add is a single atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
//
//d2x:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be 0; negative deltas are for Reset only).
//
//d2x:noalloc
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// counterShards is the fixed cell count of a ShardedCounter: a power of
// two so the hint folds with a mask, and enough cells that 8–16 hot
// goroutines land on distinct cache lines with high probability.
const counterShards = 16

// counterCell is one shard, padded out to a 64-byte cache line so
// neighbouring cells never false-share under concurrent increments.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// ShardedCounter is a Counter spread over cache-line-padded cells for
// write paths hot enough that a single shared atomic serializes cores
// (the per-command call counters under the saturation workload).
// Callers pass a cheap affinity hint — any value stable per goroutine
// or per session, e.g. the session ID — to pick a cell; correctness
// does not depend on the hint (a constant hint degrades to a plain
// Counter). Value sums the cells, so totals stay exact.
type ShardedCounter struct {
	cells [counterShards]counterCell
}

// Inc adds 1 to the cell selected by hint.
//
//d2x:noalloc
func (c *ShardedCounter) Inc(hint uint64) { c.cells[hint&(counterShards-1)].v.Add(1) }

// Add adds n to the cell selected by hint.
//
//d2x:noalloc
func (c *ShardedCounter) Add(hint uint64, n int64) { c.cells[hint&(counterShards-1)].v.Add(n) }

// Value returns the exact total across cells. Each cell is read with an
// atomic load; a value read while writers run is a consistent-enough
// cut, same as Counter under concurrent Inc.
func (c *ShardedCounter) Value() int64 {
	var total int64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}

func (c *ShardedCounter) reset() {
	for i := range c.cells {
		c.cells[i].v.Store(0)
	}
}

// Gauge is a point-in-time value with a high-water mark, e.g. live
// debug sessions. Set and Add maintain Max with a CAS loop that almost
// always succeeds on the first try.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores the current value and raises the high-water mark.
//
//d2x:noalloc
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	g.raise(n)
}

// Add adjusts the current value by delta and raises the high-water mark.
//
//d2x:noalloc
func (g *Gauge) Add(delta int64) {
	g.raise(g.v.Add(delta))
}

//d2x:noalloc
func (g *Gauge) raise(n int64) {
	for {
		cur := g.max.Load()
		if n <= cur || g.max.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

func (g *Gauge) reset() {
	g.v.Store(0)
	g.max.Store(0)
}

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// samples whose nanosecond duration has bit length i, i.e. durations in
// [2^(i-1), 2^i). 48 buckets cover up to ~3.2 days, far beyond any
// debugger command.
const histBuckets = 48

// Histogram is a fixed-bucket log2 latency histogram. Observe is a
// handful of atomic adds — no locks, no allocation — so it is safe on
// the shared-tables read path. Quantiles are estimated at the geometric
// midpoint of the holding bucket, which for log2 buckets bounds the
// relative error at ~±41%: plenty for "did xbt regress 25%?" questions
// when comparing like against like.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one duration given in nanoseconds.
//
//d2x:noalloc
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// Since observes the time elapsed from start. A zero start (observation
// disabled when the operation began) records nothing, so callers can
// write `defer h.Since(obs.Now())` unconditionally.
func (h *Histogram) Since(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// SinceNS observes the time elapsed from a NowNanos timestamp. A zero
// start (observation disabled when the operation began) records nothing.
//
//d2x:noalloc
func (h *Histogram) SinceNS(startNS int64) {
	if startNS == 0 {
		return
	}
	h.ObserveNS(NowNanos() - startNS)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNS returns the summed durations in nanoseconds.
func (h *Histogram) SumNS() int64 { return h.sum.Load() }

// MaxNS returns the largest observed duration in nanoseconds.
func (h *Histogram) MaxNS() int64 { return h.max.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds from the
// bucket counts: the cumulative count crosses q*total in some bucket,
// and the estimate is that bucket's geometric midpoint.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return h.max.Load()
}

// bucketMid returns the geometric midpoint of bucket i, the estimate
// Quantile reports. Bucket 0 holds only zero durations.
func bucketMid(i int) int64 {
	switch i {
	case 0:
		return 0
	case 1:
		return 1
	}
	// Bucket i covers [2^(i-1), 2^i); midpoint 1.5 * 2^(i-1) = 3<<(i-2).
	return 3 << (i - 2)
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Registry holds named metrics and one trace ring. Registration uses
// sync.Map (read-mostly after startup; no mutex); values update via
// atomics only.
type Registry struct {
	counters sync.Map // string -> *Counter
	sharded  sync.Map // string -> *ShardedCounter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
	ring     *Ring
}

// NewRegistry returns an empty registry with a trace ring of the given
// capacity (rounded up to a power of two; 0 uses DefaultRingSize).
func NewRegistry(ringSize int) *Registry {
	return &Registry{ring: NewRing(ringSize)}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// ShardedCounter returns the named sharded counter, registering it on
// first use. Sharded counters share the counter namespace in snapshots
// (their summed value appears under Counters), so a name should not be
// used for both a Counter and a ShardedCounter.
func (r *Registry) ShardedCounter(name string) *ShardedCounter {
	if v, ok := r.sharded.Load(name); ok {
		return v.(*ShardedCounter)
	}
	v, _ := r.sharded.LoadOrStore(name, &ShardedCounter{})
	return v.(*ShardedCounter)
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Ring returns the registry's trace ring.
//
//d2x:noalloc
func (r *Registry) Ring() *Ring { return r.ring }

// Reset zeroes every registered metric in place (handles stay valid)
// and clears the trace ring.
func (r *Registry) Reset() {
	r.counters.Range(func(_, v any) bool { v.(*Counter).reset(); return true })
	r.sharded.Range(func(_, v any) bool { v.(*ShardedCounter).reset(); return true })
	r.gauges.Range(func(_, v any) bool { v.(*Gauge).reset(); return true })
	r.hists.Range(func(_, v any) bool { v.(*Histogram).reset(); return true })
	r.ring.Reset()
}
