package obs

import (
	"sync"
	"testing"
)

// TestShardedCounterExactSumUnderConcurrency: 8 goroutines hammer one
// ShardedCounter — some with a stable per-goroutine affinity hint, some
// with wandering hints, since correctness must not depend on the hint —
// and Value() must report the exact total, no lost updates. Run under
// -race (CI does) this doubles as the data-race proof for the padded
// cells.
func TestShardedCounterExactSumUnderConcurrency(t *testing.T) {
	const (
		goroutines = 8
		perG       = 20000
	)
	var c ShardedCounter
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hint := uint64(g)
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc(hint)
				} else {
					c.Add(hint+uint64(i), 1)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value() = %d, want exactly %d", got, goroutines*perG)
	}

	// Hints far past the cell count fold with the mask; negative deltas
	// balance out across whichever cells they land on.
	c.Add(1<<40, 7)
	c.Add(3, -7)
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("after +7/-7: Value() = %d, want %d", got, goroutines*perG)
	}
}

// TestShardedCounterRegistry: named sharded counters dedupe through the
// registry, appear in snapshots under the counter namespace with their
// summed value, and Reset zeroes them in place.
func TestShardedCounterRegistry(t *testing.T) {
	r := NewRegistry(0)
	c := r.ShardedCounter("test.sharded")
	if r.ShardedCounter("test.sharded") != c {
		t.Fatal("second lookup returned a different counter")
	}
	c.Inc(1)
	c.Inc(2)
	c.Add(3, 3)
	if got := r.Snapshot().Counters["test.sharded"]; got != 5 {
		t.Fatalf("snapshot value = %d, want 5", got)
	}
	r.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("value after Reset = %d, want 0", got)
	}
}
