package obs

import "testing"

func TestRingAddAllocFree(t *testing.T) {
	r := NewRing(64)
	e := Event{Kind: "cmd", Name: "xbt", Time: 1}
	n := testing.AllocsPerRun(200, func() { r.Add(e) })
	if n != 0 {
		t.Fatalf("Ring.Add allocates %v per call, want 0", n)
	}
}
