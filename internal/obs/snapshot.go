package obs

import (
	"encoding/json"
	"sort"
	"time"
)

// Snap is a point-in-time capture of a registry: the export format of
// the debug service's observability layer. It marshals to stable JSON
// (maps sort by key) for d2xdemo -stats, the d2xdbg stats command, and
// the BENCH_*.json perf trajectory.
type Snap struct {
	// TakenAt is the capture time in Unix nanoseconds.
	TakenAt int64 `json:"taken_at"`
	// Enabled reports whether timing/event capture was on.
	Enabled bool `json:"enabled"`

	Counters  map[string]int64       `json:"counters"`
	Gauges    map[string]GaugeSnap   `json:"gauges"`
	Latencies map[string]LatencySnap `json:"latencies"`

	// TraceEvents is how many events the ring holds; TraceWritten how
	// many were ever recorded (the difference is what wrapping dropped).
	TraceEvents  int   `json:"trace_events"`
	TraceWritten int64 `json:"trace_written"`
}

// GaugeSnap is one gauge: current value and high-water mark.
type GaugeSnap struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// LatencySnap summarises one histogram in nanoseconds. Quantiles are
// log2-bucket estimates (see Histogram.Quantile).
type LatencySnap struct {
	Count  int64 `json:"count"`
	SumNS  int64 `json:"sum_ns"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Snapshot captures every registered metric. Values are read with the
// same atomics updates use; a snapshot taken while commands run is a
// consistent-enough cut (each individual value is untorn).
func (r *Registry) Snapshot() *Snap {
	s := &Snap{
		TakenAt:      time.Now().UnixNano(),
		Enabled:      Enabled(),
		Counters:     map[string]int64{},
		Gauges:       map[string]GaugeSnap{},
		Latencies:    map[string]LatencySnap{},
		TraceEvents:  r.ring.Len(),
		TraceWritten: r.ring.Written(),
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.sharded.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*ShardedCounter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		g := v.(*Gauge)
		s.Gauges[k.(string)] = GaugeSnap{Value: g.Value(), Max: g.Max()}
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		ls := LatencySnap{
			Count: h.Count(), SumNS: h.SumNS(), MaxNS: h.MaxNS(),
			P50NS: h.Quantile(0.50), P90NS: h.Quantile(0.90), P99NS: h.Quantile(0.99),
		}
		if ls.Count > 0 {
			ls.MeanNS = ls.SumNS / ls.Count
		}
		s.Latencies[k.(string)] = ls
		return true
	})
	return s
}

// MarshalIndent renders the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys, so output is diff-stable).
func (s *Snap) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterNames returns the sorted counter names, a convenience for
// tests and text UIs.
func (s *Snap) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
