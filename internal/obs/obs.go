// Package obs is the observability substrate of the D2X debug service:
// low-overhead, allocation-conscious counters, latency histograms, gauges
// and a structured event trace, threaded through every layer of the debug
// stack (D2X-R commands, the shared-tables session service, rtv-handler
// guards, and debugger dispatch).
//
// The paper's premise (§3.2, Table 2) is that every D2X command is a
// cheap `call` into the paused inferior. This package is how the service
// *proves* that premise keeps holding as the system grows: per-command
// latency distributions, decode/cache-hit counters and guard-violation
// telemetry are measured in production, exported as one JSON snapshot
// (`obs.Snapshot()`), and fed to the bench harness so every PR leaves a
// perf trajectory behind (BENCH_*.json).
//
// Design constraints, in order:
//
//  1. No lock contention and no allocation on hot paths. Counters are
//     single atomic adds; histograms are fixed log2 buckets of atomic
//     counters; the event ring copies Event values into fixed slots
//     under per-slot CAS spinlocks, so tracing never touches the heap.
//     The only shared structure with any coordination is sync.Map, used
//     for metric registration, which is read-mostly after startup.
//  2. Metric handles are cheap to cache. Instrumented packages resolve
//     their handles once (at construction or init) and then touch only
//     atomics; Reset zeroes values in place so cached handles survive.
//  3. Everything is optional. SetEnabled(false) turns the clock reads
//     and event capture off; the overhead benchmark pair in the repo
//     root quantifies the residual cost (<5% on xbt, see EXPERIMENTS.md).
//
// The package deliberately has no dependency on any other repo package,
// so every layer — including the stock debugger, which must stay
// D2X-free — may import it.
package obs

import (
	"io"
	"sync/atomic"
	"time"
)

// enabled gates clock reads and event capture. Counters stay live even
// when disabled (an atomic add costs less than the branch would save).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns timing and event capture on or off process-wide.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether timing and event capture are on.
//
//d2x:noalloc
func Enabled() bool { return enabled.Load() }

// Now returns the current time when observation is enabled, and the zero
// time otherwise. Pair with Histogram.Since: a zero start records
// nothing, so instrumentation sites need no branches of their own.
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// base anchors NowNanos: process-start wall time with its monotonic
// reading. time.Since(base) is a single monotonic clock read, roughly
// half the cost of time.Now (which reads wall and monotonic clocks) —
// the difference that matters on command paths timed twice per call.
var (
	base     = time.Now()
	baseWall = base.UnixNano()
)

// NowNanos returns a monotonic timestamp in nanoseconds since process
// start when observation is enabled, and 0 otherwise. This is the hot
// path clock: pair with Histogram.SinceNS, which records nothing for a
// zero start. Use Now/Since on cold paths that want wall-clock times.
//
//d2x:noalloc
func NowNanos() int64 {
	if !enabled.Load() {
		return 0
	}
	return int64(time.Since(base))
}

// WallNanos converts a NowNanos timestamp to Unix nanoseconds, letting
// event emitters derive a wall-clock stamp without a second clock read.
//
//d2x:noalloc
func WallNanos(ns int64) int64 { return baseWall + ns }

// Default is the process-wide registry. The debug service is one process
// serving many sessions and builds, so its metrics aggregate naturally;
// tests needing isolation take deltas or call Reset.
var Default = NewRegistry(DefaultRingSize)

// GetCounter returns (registering on first use) a named counter in the
// default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetShardedCounter returns (registering on first use) a named sharded
// counter in the default registry.
func GetShardedCounter(name string) *ShardedCounter { return Default.ShardedCounter(name) }

// GetGauge returns (registering on first use) a named gauge in the
// default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns (registering on first use) a named latency
// histogram in the default registry.
func GetHistogram(name string) *Histogram { return Default.Histogram(name) }

// Emit records one trace event in the default registry's ring. The event
// is dropped (cheaply: one atomic load) when observation is disabled.
//
//d2x:noalloc
func Emit(e Event) {
	if !enabled.Load() {
		return
	}
	Default.Ring().Add(e)
}

// Snapshot captures the default registry: every counter, gauge and
// histogram, plus trace-ring occupancy. Marshal it with MarshalJSON /
// MarshalIndent for export.
func Snapshot() *Snap { return Default.Snapshot() }

// WriteTrace dumps the default registry's event ring as JSONL, oldest
// event first.
func WriteTrace(w io.Writer) error { return Default.Ring().WriteJSONL(w) }

// Reset zeroes every metric value and clears the trace ring of the
// default registry, in place: handles cached by instrumented packages
// remain valid. Meant for tests and for `stats reset` style tooling.
func Reset() { Default.Reset() }
