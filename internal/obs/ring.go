package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the trace-ring capacity of the default registry.
const DefaultRingSize = 4096

// Event is one structured trace record: what the debugger of the
// debugger sees. Events are written by every instrumented layer (one
// per D2X command, table decode, session create/evict, guard violation,
// ...) and dumped post hoc as JSONL to debug the debug service itself.
type Event struct {
	// Seq is the global sequence number, assigned by the ring. Gaps in
	// a dump mean the ring wrapped.
	Seq int64 `json:"seq"`
	// Time is the wall-clock time in Unix nanoseconds.
	Time int64 `json:"t"`
	// Kind is the event class: "cmd", "decode", "session", "guard", ...
	Kind string `json:"kind"`
	// Name is the specific operation: "xbt", "tables-decode", "evict", ...
	Name string `json:"name,omitempty"`
	// Session is the session.State ID the event belongs to (0 = none).
	Session int64 `json:"sess,omitempty"`
	// RIP is the encoded instruction pointer of a command event.
	RIP int64 `json:"rip,omitempty"`
	// DurNS is the operation's duration in nanoseconds (0 = instant).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Err holds the error text of a failed operation.
	Err string `json:"err,omitempty"`
	// Detail carries free-form context ("fuel=2000000", "hit", ...).
	Detail string `json:"detail,omitempty"`
}

// Ring is a fixed-capacity, lock-free trace buffer. Writers reserve a
// slot with one atomic add and publish a heap-allocated Event with one
// atomic pointer store; readers load pointers atomically, so a dump can
// never observe a torn event — at worst it misses a slot that is being
// replaced mid-scan, which is inherent to sampling a live ring.
type Ring struct {
	mask  int64
	pos   atomic.Int64
	slots []atomic.Pointer[Event]
}

// NewRing returns a ring with capacity rounded up to a power of two
// (0 or negative uses DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	cap := 1
	for cap < size {
		cap <<= 1
	}
	return &Ring{mask: int64(cap - 1), slots: make([]atomic.Pointer[Event], cap)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > int64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Written returns how many events were ever added (≥ Len once wrapped).
func (r *Ring) Written() int64 { return r.pos.Load() }

// Add records one event. The event value is copied to the heap; callers
// may reuse their struct. Timestamps and sequence numbers are filled in
// here so call sites stay one-liners.
func (r *Ring) Add(e Event) {
	seq := r.pos.Add(1) - 1
	e.Seq = seq
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	r.slots[seq&r.mask].Store(&e)
}

// Events returns the buffered events, oldest first. Each entry is a
// copy; the ring keeps running.
func (r *Ring) Events() []Event {
	head := r.pos.Load()
	n := int64(len(r.slots))
	start := head - n
	if start < 0 {
		start = 0
	}
	out := make([]Event, 0, head-start)
	for s := start; s < head; s++ {
		p := r.slots[s&r.mask].Load()
		// Skip slots that wrapped under us (their Seq moved ahead) or
		// are not yet published.
		if p == nil || p.Seq != s {
			continue
		}
		out = append(out, *p)
	}
	return out
}

// WriteJSONL dumps the buffered events as JSON Lines, oldest first.
func (r *Ring) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}

// Reset clears the ring.
func (r *Ring) Reset() {
	r.pos.Store(0)
	for i := range r.slots {
		r.slots[i].Store(nil)
	}
}
