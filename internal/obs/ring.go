package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// DefaultRingSize is the trace-ring capacity of the default registry.
const DefaultRingSize = 4096

// Event is one structured trace record: what the debugger of the
// debugger sees. Events are written by every instrumented layer (one
// per D2X command, table decode, session create/evict, guard violation,
// ...) and dumped post hoc as JSONL to debug the debug service itself.
type Event struct {
	// Seq is the global sequence number, assigned by the ring. Gaps in
	// a dump mean the ring wrapped.
	Seq int64 `json:"seq"`
	// Time is the wall-clock time in Unix nanoseconds.
	Time int64 `json:"t"`
	// Kind is the event class: "cmd", "decode", "session", "guard", ...
	Kind string `json:"kind"`
	// Name is the specific operation: "xbt", "tables-decode", "evict", ...
	Name string `json:"name,omitempty"`
	// Session is the session.State ID the event belongs to (0 = none).
	Session int64 `json:"sess,omitempty"`
	// RIP is the encoded instruction pointer of a command event.
	RIP int64 `json:"rip,omitempty"`
	// DurNS is the operation's duration in nanoseconds (0 = instant).
	DurNS int64 `json:"dur_ns,omitempty"`
	// Err holds the error text of a failed operation.
	Err string `json:"err,omitempty"`
	// Detail carries free-form context ("fuel=2000000", "hit", ...).
	Detail string `json:"detail,omitempty"`
}

// ringSlot stores one event in place. lock is a CAS spinlock (0 free,
// 1 held) taken by writers for the few stores it takes to copy the
// payload in, and try-taken by readers for the copy out. Because both
// sides synchronise on the same atomic, the payload accesses are
// ordered (happens-before via the CAS/Store pair) and a dump can never
// observe a torn event. The slot seq that identifies which generation
// the payload belongs to lives in ev.Seq itself.
type ringSlot struct {
	lock atomic.Int32
	ev   Event
}

// Ring is a fixed-capacity trace buffer with allocation-free writes.
// Writers reserve a slot with one atomic add and copy the event value
// into it under a per-slot spinlock — no per-event heap allocation, so
// tracing stays off the allocator even on the command hot path.
// Readers skip a slot whose lock they cannot take; at worst a dump
// misses a slot that is being replaced mid-scan, which is inherent to
// sampling a live ring.
type Ring struct {
	mask  int64
	pos   atomic.Int64
	slots []ringSlot
}

// NewRing returns a ring with capacity rounded up to a power of two
// (0 or negative uses DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	cap := 1
	for cap < size {
		cap <<= 1
	}
	return &Ring{mask: int64(cap - 1), slots: make([]ringSlot, cap)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Len returns how many events the ring currently holds.
func (r *Ring) Len() int {
	n := r.pos.Load()
	if n > int64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Written returns how many events were ever added (≥ Len once wrapped).
func (r *Ring) Written() int64 { return r.pos.Load() }

// Add records one event. The event value is copied into the ring in
// place — no heap allocation — so callers may reuse their struct.
// Timestamps and sequence numbers are filled in here so call sites
// stay one-liners. Two writers contend on the same slot only when the
// ring wraps a full capacity within the copy window, so the spin is
// effectively uncontended.
//
//d2x:noalloc
func (r *Ring) Add(e Event) {
	seq := r.pos.Add(1) - 1
	e.Seq = seq
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	s := &r.slots[seq&r.mask]
	for !s.lock.CompareAndSwap(0, 1) {
	}
	s.ev = e
	s.lock.Store(0)
}

// Events returns the buffered events, oldest first. Each entry is a
// copy; the ring keeps running.
func (r *Ring) Events() []Event {
	head := r.pos.Load()
	n := int64(len(r.slots))
	start := head - n
	if start < 0 {
		start = 0
	}
	out := make([]Event, 0, head-start)
	for s := start; s < head; s++ {
		slot := &r.slots[s&r.mask]
		// Skip slots a writer holds right now (being replaced mid-scan).
		if !slot.lock.CompareAndSwap(0, 1) {
			continue
		}
		e := slot.ev
		slot.lock.Store(0)
		// Skip slots that wrapped under us (their Seq moved ahead) or
		// are not yet published (Seq still belongs to an older lap).
		if e.Seq != s || e.Time == 0 {
			continue
		}
		out = append(out, e)
	}
	return out
}

// WriteJSONL dumps the buffered events as JSON Lines, oldest first.
func (r *Ring) WriteJSONL(w io.Writer) error {
	for _, e := range r.Events() {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s\n", b); err != nil {
			return err
		}
	}
	return nil
}

// Reset clears the ring.
func (r *Ring) Reset() {
	r.pos.Store(0)
	for i := range r.slots {
		s := &r.slots[i]
		for !s.lock.CompareAndSwap(0, 1) {
		}
		s.ev = Event{}
		s.lock.Store(0)
	}
}
