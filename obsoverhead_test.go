package bench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"d2x/internal/debugger"
	"d2x/internal/graphit"
	"d2x/internal/obs"
)

// pausedPagerankDeltaT is pausedPagerankDelta for plain tests: build
// PageRankDelta with D2X and pause inside the specialised UDF.
func pausedPagerankDeltaT(t *testing.T, spec string) *debugger.Debugger {
	t.Helper()
	src := strings.Replace(graphit.PageRankDeltaSrc,
		`load("powerlaw:n=64,m=512,seed=5")`, fmt.Sprintf("load(%q)", spec), 1)
	art, err := graphit.CompileToC("pagerankdelta.gt", src,
		"s", graphit.PageRankDeltaSchedule, graphit.CompileOptions{D2X: true})
	if err != nil {
		t.Fatal(err)
	}
	build, err := art.Link()
	if err != nil {
		t.Fatal(err)
	}
	var sink strings.Builder
	d, err := build.NewSession(&sink)
	if err != nil {
		t.Fatal(err)
	}
	udfLine := lineOf(build.Source, "atomic_add(&new_rank[dst]")
	for _, c := range []string{fmt.Sprintf("break pagerankdelta.c:%d", udfLine), "run"} {
		if err := d.Execute(c); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// TestObsOverheadPaired measures the instrumentation overhead on xbt with
// a paired design: enabled and disabled batches alternate inside one
// process, so machine drift between separate benchmark runs (which on a
// shared box exceeds the effect being measured) cancels out. The result
// is logged, not asserted — CI boxes are too noisy for a hard timing
// gate here; the number lands in EXPERIMENTS.md and BENCH_pr4.json.
func TestObsOverheadPaired(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement, skipped in -short")
	}
	d := pausedPagerankDeltaT(t, "powerlaw:n=64,m=512,seed=5")
	const rounds, iters = 14, 2000
	run := func(on bool) time.Duration {
		obs.SetEnabled(on)
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := d.Execute("xbt"); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	defer obs.SetEnabled(true)
	run(true) // warm both paths before measuring
	run(false)
	var onTot, offTot time.Duration
	for r := 0; r < rounds; r++ {
		onTot += run(true)
		offTot += run(false)
	}
	on := float64(onTot.Nanoseconds()) / float64(rounds*iters)
	off := float64(offTot.Nanoseconds()) / float64(rounds*iters)
	t.Logf("xbt instrumentation overhead: on %.0f ns/op, off %.0f ns/op, delta %.0f ns (%.2f%%)",
		on, off, on-off, 100*(on-off)/off)
}
