module d2x

go 1.24
